"""Runtime sanitizer: every invariant fires on corrupted state, passes clean.

The fakes below duck-type only what the sanitizer reads; the end-to-end
tests use the real stream rig with deliberately-injected corruption.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.sanitizer import (
    InvariantViolation,
    SimSanitizer,
    install,
    is_installed,
    uninstall,
)
from repro.core.config import OptimizationConfig
from repro.host.configs import linux_up_config
from repro.host.machine import ReceiverMachine
from repro.nic.ring import RxRing
from repro.sim.engine import Simulator
from repro.tcp.state import TcpState
from repro.workloads.stream import build_stream_rig, run_stream_experiment


def fast_config(**overrides):
    cfg = linux_up_config()
    return dataclasses.replace(cfg, n_nics=overrides.pop("n_nics", 2), **overrides)


@pytest.fixture(autouse=True)
def _fresh_sanitizer_state():
    """These tests install/detach sanitizers themselves; run them from a
    clean slate even when REPRO_SANITIZE=1 has the suite-wide fixture
    installing one first (a second hook on the same engine is refused)."""
    from repro.analysis import sanitizer as sanitizer_mod

    if sanitizer_mod.is_installed():
        uninstall()
    yield
    if sanitizer_mod.is_installed():
        uninstall()


# ----------------------------------------------------------------------
# duck-typed stand-ins
# ----------------------------------------------------------------------
class FakeReno:
    def __init__(self, mss=1448):
        self.mss = mss
        self.cwnd = 3 * mss
        self.ssthresh = 1 << 30


class FakeConnStats:
    def __init__(self):
        self.bytes_delivered = 0


class FakeConn:
    def __init__(self, name="fake"):
        self.name = name
        self.state = TcpState.ESTABLISHED
        self.iss = 1000
        self.snd_una = 1001
        self.snd_nxt = 1001
        self.irs = 9000
        self.rcv_nxt = 9001
        self.reno = FakeReno()
        self.stats = FakeConnStats()


class FakeKernel:
    def __init__(self):
        self.connections = {}
        self.aggregator = None


class FakeMachine:
    def __init__(self):
        self.kernel = FakeKernel()
        self.clients = []
        self.drivers = []
        self.nics = []


def make_sanitized(conn=None):
    """A Simulator with a sanitizer watching one fake machine."""
    sim = Simulator()
    sanitizer = SimSanitizer(sim, deep_every=4)
    machine = FakeMachine()
    if conn is not None:
        machine.kernel.connections[("flow",)] = conn
    sanitizer.watch_machine(machine)
    return sim, sanitizer, machine


def fire(sim, n=1):
    """Schedule and run ``n`` no-op events (each triggers the audit hook)."""
    for _ in range(n):
        sim.post(0.0, lambda: None)
    sim.run()


# ----------------------------------------------------------------------
# per-event connection invariants
# ----------------------------------------------------------------------
class TestConnectionInvariants:
    def test_healthy_connection_passes(self):
        sim, sanitizer, _ = make_sanitized(FakeConn())
        fire(sim, 8)
        assert sanitizer.stats.connection_checks == 8

    def test_snd_una_regression_detected(self):
        conn = FakeConn()
        sim, _, _ = make_sanitized(conn)
        fire(sim)  # snapshot taken
        conn.snd_una = (conn.snd_una - 100) & 0xFFFFFFFF
        with pytest.raises(InvariantViolation, match="snd_una regressed"):
            fire(sim)

    def test_rcv_nxt_regression_detected(self):
        conn = FakeConn()
        sim, _, _ = make_sanitized(conn)
        fire(sim)
        conn.rcv_nxt = (conn.rcv_nxt - 1) & 0xFFFFFFFF
        with pytest.raises(InvariantViolation, match="rcv_nxt regressed"):
            fire(sim)

    def test_snd_una_ahead_of_snd_nxt_detected(self):
        conn = FakeConn()
        conn.snd_una = conn.snd_nxt + 10
        sim, _, _ = make_sanitized(conn)
        with pytest.raises(InvariantViolation, match="ahead of snd_nxt"):
            fire(sim)

    def test_cwnd_below_mss_detected(self):
        conn = FakeConn()
        conn.reno.cwnd = conn.reno.mss - 1
        sim, _, _ = make_sanitized(conn)
        with pytest.raises(InvariantViolation, match="cwnd"):
            fire(sim)

    def test_ssthresh_below_floor_detected(self):
        conn = FakeConn()
        conn.reno.ssthresh = conn.reno.mss  # RFC 5681 floor is 2*MSS
        sim, _, _ = make_sanitized(conn)
        with pytest.raises(InvariantViolation, match="ssthresh"):
            fire(sim)

    def test_receive_stream_accounting_mismatch_detected(self):
        conn = FakeConn()
        # rcv_nxt claims 500 delivered bytes, stats say 0.
        conn.rcv_nxt = (conn.irs + 1 + 500) & 0xFFFFFFFF
        sim, _, _ = make_sanitized(conn)
        with pytest.raises(InvariantViolation, match="receive stream accounting"):
            fire(sim)

    def test_fin_octet_slack_allowed(self):
        conn = FakeConn()
        conn.stats.bytes_delivered = 500
        conn.rcv_nxt = (conn.irs + 1 + 500 + 1) & 0xFFFFFFFF  # +1 = consumed FIN
        sim, sanitizer, _ = make_sanitized(conn)
        fire(sim, 2)
        assert sanitizer.stats.connection_checks == 2

    def test_pre_handshake_states_skip_stream_accounting(self):
        conn = FakeConn()
        conn.state = TcpState.LISTEN
        conn.irs = 0
        conn.rcv_nxt = 0
        sim, sanitizer, _ = make_sanitized(conn)
        fire(sim, 2)
        assert sanitizer.stats.connection_checks == 2


# ----------------------------------------------------------------------
# structural audits (heap / ring)
# ----------------------------------------------------------------------
class TestStructuralAudits:
    def test_time_never_regresses_tracked(self):
        sim, sanitizer, _ = make_sanitized()
        sim.post(1e-3, lambda: None)
        sim.post(2e-3, lambda: None)
        sim.run()
        assert sanitizer.stats.events_checked == 2

    def test_heap_accounting_corruption_detected(self):
        sim, sanitizer, _ = make_sanitized()
        fire(sim, 4)  # deep audit every 4 events; clean pass first
        sim._pending += 3  # simulate lost bookkeeping
        with pytest.raises(InvariantViolation, match="accounting broken across tiers"):
            fire(sim, 4)

    def test_wheel_count_corruption_detected(self):
        """A cancel double-count (count decremented twice for one entry)
        shows up as count != bucket walk in the deep audit."""
        sim, sanitizer, _ = make_sanitized()
        if sim.wheel is None:
            pytest.skip("heap-only engine")
        # Park a timer far enough out to live in the wheel across the audit.
        sim.schedule(0.5, lambda: None)
        assert sim.wheel.count == 1
        sim.wheel.count -= 1  # simulate double-counted cancel
        sim._pending -= 1  # keep the cross-tier sum consistent
        with pytest.raises(InvariantViolation, match="timer wheel accounting"):
            fire(sim, 4)

    def test_ring_conservation_corruption_detected(self):
        sim, sanitizer, machine = make_sanitized()

        class FakeNicStats:
            rx_frames = 0

        class FakeQueue:
            index = 0
            ring = RxRing(capacity=4)
            lro = None

        class FakeNic:
            name = "fake-eth0"
            n_queues = 1
            queues = [FakeQueue()]
            stats = FakeNicStats()

        machine.nics.append(FakeNic())
        fire(sim, 4)  # clean audit first
        FakeQueue.ring.drained += 1  # a packet "drained" that was never posted
        with pytest.raises(InvariantViolation, match="ring packet conservation"):
            fire(sim, 4)


# ----------------------------------------------------------------------
# clean end-to-end runs (real rigs)
# ----------------------------------------------------------------------
class TestCleanRuns:
    def test_optimized_stream_run_is_clean_and_covered(self):
        handle = install()
        try:
            run_stream_experiment(
                fast_config(), OptimizationConfig.optimized(),
                duration=0.03, warmup=0.01,
            )
            san = handle.sanitizers[-1]
            # Every invariant class actually exercised, not just not-failing.
            assert san.stats.events_checked > 1000
            assert san.stats.connection_checks > 0
            assert san.stats.skbs_checked > 0          # aggregation path
            assert san.stats.templates_verified > 0    # ACK offload path
            assert san.stats.expanded_acks_verified > 0
            assert san.stats.deep_audits > 0
        finally:
            uninstall(handle)

    def test_baseline_stream_run_is_clean(self):
        handle = install()
        try:
            run_stream_experiment(
                fast_config(), OptimizationConfig.baseline(),
                duration=0.03, warmup=0.01,
            )
            assert handle.sanitizers[-1].stats.connection_checks > 0
        finally:
            uninstall(handle)

    def test_install_uninstall_restores_classes(self):
        sim_init = Simulator.__init__
        machine_init = ReceiverMachine.__init__
        handle = install()
        assert is_installed()
        assert Simulator.__init__ is not sim_init
        uninstall(handle)
        assert not is_installed()
        assert Simulator.__init__ is sim_init
        assert ReceiverMachine.__init__ is machine_init

    def test_install_is_idempotent(self):
        handle = install()
        try:
            assert install() is handle
        finally:
            uninstall(handle)


# ----------------------------------------------------------------------
# deliberately-broken connection, end to end
# ----------------------------------------------------------------------
class TestBrokenConnectionEndToEnd:
    def _run_with_corruption(self, corrupt):
        """Run a real rig; apply ``corrupt(machine)`` mid-run."""
        handle = install()
        try:
            sim, machine, clients, senders = build_stream_rig(
                fast_config(), OptimizationConfig.optimized()
            )
            sim.run(until=0.01)  # healthy warm-up under the sanitizer
            corrupt(machine)
            sim.run(until=0.02)
        finally:
            uninstall(handle)

    def test_ack_state_corruption_caught_in_real_run(self):
        def corrupt(machine):
            conn = next(iter(machine.kernel.connections.values()))
            conn.rcv_nxt = (conn.rcv_nxt - 1000) & 0xFFFFFFFF

        with pytest.raises(InvariantViolation, match="rcv_nxt regressed"):
            self._run_with_corruption(corrupt)

    def test_cwnd_corruption_caught_in_real_run(self):
        def corrupt(machine):
            conn = next(iter(machine.kernel.connections.values()))
            conn.reno.cwnd = 0

        with pytest.raises(InvariantViolation, match="cwnd"):
            self._run_with_corruption(corrupt)

    def test_aggregation_counter_corruption_caught(self):
        def corrupt(machine):
            machine.kernel.aggregator.stats.packets_enqueued += 7

        with pytest.raises(InvariantViolation, match="aggregation queue conservation"):
            self._run_with_corruption(corrupt)

    def test_delivered_bytes_corruption_caught(self):
        def corrupt(machine):
            conn = next(iter(machine.kernel.connections.values()))
            conn.stats.bytes_delivered += 10_000

        with pytest.raises(InvariantViolation, match="receive stream accounting"):
            self._run_with_corruption(corrupt)


# ----------------------------------------------------------------------
# aggregation / template checks on corrupted packet structures
# ----------------------------------------------------------------------
class TestPacketStructureChecks:
    def _delivered_aggregate(self):
        """Capture one real multi-fragment aggregate skb from a live rig."""
        handle = install()
        captured = []
        try:
            sim, machine, clients, senders = build_stream_rig(
                fast_config(), OptimizationConfig.optimized()
            )
            aggregator = machine.kernel.aggregator
            sim.run(until=0.005)  # wraps deliver via the sanitizer
            original = aggregator.deliver

            def capturing(skb):
                if skb.frags and len(captured) < 1:
                    captured.append(skb)
                return original(skb)

            aggregator.deliver = capturing
            sanitizer = handle.sanitizers[-1]
            sim.run(until=0.02)
        finally:
            uninstall(handle)
        assert captured, "no aggregate was produced"
        return sanitizer, aggregator, captured[0]

    def test_fragment_edge_corruption_detected(self):
        sanitizer, aggregator, skb = self._delivered_aggregate()
        skb.frag_end_seqs[-1] = (skb.frag_end_seqs[-1] + 1000) & 0xFFFFFFFF
        with pytest.raises(InvariantViolation, match="byte-stream equivalence"):
            sanitizer._check_aggregated_skb(aggregator, skb)

    def test_head_ack_mismatch_detected(self):
        sanitizer, aggregator, skb = self._delivered_aggregate()
        skb.frag_acks[-1] = (skb.frag_acks[-1] + 4) & 0xFFFFFFFF
        with pytest.raises(InvariantViolation, match="not the last"):
            sanitizer._check_aggregated_skb(aggregator, skb)

    def test_metadata_array_mismatch_detected(self):
        sanitizer, aggregator, skb = self._delivered_aggregate()
        skb.frag_windows.append(1234)
        with pytest.raises(InvariantViolation, match="metadata arrays"):
            sanitizer._check_aggregated_skb(aggregator, skb)

    def test_template_checksum_corruption_detected(self):
        """A template whose head checksum is wrong fails RFC 1624 verification."""
        handle = install()
        try:
            sim, machine, clients, senders = build_stream_rig(
                fast_config(), OptimizationConfig.optimized()
            )
            driver = machine.drivers[0]
            sim.run(until=0.01)  # sanitizer wraps tx_template
            sanitizer = handle.sanitizers[-1]

            captured = []
            wrapped = driver.tx_template  # sanitizer's checked wrapper

            def intercept(skb):
                if skb.is_template_ack and not captured:
                    # Corrupt the stored checksum the driver will patch from.
                    skb.head.tcp.checksum ^= 0x00FF
                    captured.append(skb)
                return wrapped(skb)

            driver.tx_template = intercept
            with pytest.raises(InvariantViolation, match="RFC 1624"):
                sim.run(until=0.05)
            assert captured, "no template ACK passed through the driver"
        finally:
            uninstall(handle)


# ----------------------------------------------------------------------
# fault-era invariants: link / driver-reset / governor conservation
# ----------------------------------------------------------------------
class TestFaultInvariantTampering:
    """Each invariant added for the fault-injection subsystem fires when the
    matching state is tampered with mid-run on a real rig."""

    def _run_with_corruption(self, corrupt, opt=None):
        handle = install()
        try:
            sim, machine, clients, senders = build_stream_rig(
                fast_config(), opt or OptimizationConfig.optimized()
            )
            sim.run(until=0.01)  # healthy warm-up under the sanitizer
            corrupt(machine)
            sim.run(until=0.02)
        finally:
            uninstall(handle)

    def test_link_frame_conservation_tamper_caught(self):
        def corrupt(machine):
            machine.links[0].stats.frames_delivered += 3

        with pytest.raises(InvariantViolation, match="link frame conservation"):
            self._run_with_corruption(corrupt)

    def test_link_negative_in_flight_caught(self):
        def corrupt(machine):
            link = machine.links[0]
            # Keep the conservation sum balanced so the dedicated negative-
            # in-flight check is the one that fires.
            delta = link.in_flight + 2
            link.in_flight = -2
            link.stats.frames_delivered += delta

        with pytest.raises(InvariantViolation, match="in-flight frame count"):
            self._run_with_corruption(corrupt)

    def test_driver_reset_conservation_tamper_caught(self):
        def corrupt(machine):
            machine.drivers[0].stats.rx_packets += 5

        with pytest.raises(InvariantViolation, match="driver/reset packet conservation"):
            self._run_with_corruption(corrupt)

    def test_driver_reset_drop_tamper_caught(self):
        def corrupt(machine):
            # A reset that "dropped" packets the ring never drained.
            machine.drivers[0].stats.rx_dropped_reset += 2

        with pytest.raises(InvariantViolation, match="driver/reset packet conservation"):
            self._run_with_corruption(corrupt)

    def test_governor_transition_tamper_caught(self):
        def corrupt(machine):
            machine.governor.stats.enters += 1  # flag no longer matches

        with pytest.raises(InvariantViolation, match="transition accounting"):
            self._run_with_corruption(corrupt, opt=OptimizationConfig.resilient())

    # The EWMA/counter tampers below self-heal within a few observed
    # packets on a live rig (the decay pulls the rate back into range
    # before the next deep audit), so they use the fake-machine harness
    # where nothing races the audit.
    def test_governor_rate_escape_caught(self):
        from repro.faults.degradation import CoalesceGovernor

        sim, _sanitizer, machine = make_sanitized()
        gov = CoalesceGovernor()
        machine.governors = [gov]
        fire(sim, 4)  # clean audit first
        gov.rate = 1.5
        with pytest.raises(InvariantViolation, match="EWMA"):
            fire(sim, 4)

    def test_governor_disorder_count_tamper_caught(self):
        from repro.faults.degradation import CoalesceGovernor

        sim, _sanitizer, machine = make_sanitized()
        gov = CoalesceGovernor()
        machine.governors = [gov]
        fire(sim, 4)
        gov.stats.disorder_events = gov.stats.packets_seen + 10
        with pytest.raises(InvariantViolation, match="disorder"):
            fire(sim, 4)

    def test_aggregator_pool_drop_tamper_caught(self):
        def corrupt(machine):
            machine.kernel.aggregator.stats.dropped_no_buffer += 3

        with pytest.raises(InvariantViolation, match="aggregation segment conservation"):
            self._run_with_corruption(corrupt)

    def test_governor_sort_boundary_tamper_caught(self):
        def corrupt(machine):
            machine.governor.stats.sort_enters += 1  # mode no longer matches

        with pytest.raises(InvariantViolation, match="sort-boundary accounting"):
            self._run_with_corruption(
                corrupt, opt=OptimizationConfig.resilient(repair=True)
            )


# ----------------------------------------------------------------------
# reorder-repair audits: each fires on the matching tampered state
# ----------------------------------------------------------------------
class TestRepairInvariantTampering:
    """The five repair-buffer audits (per-flow bound, sorted order, release
    monotonicity, deadline, conservation) each trip on exactly the tamper
    they guard against.  Hold-state tampers use fabricated flows on the
    fake-machine harness — on a live rig in-order drains empty the buffer
    faster than the deep-audit cadence; the conservation tamper runs end to
    end on a real repair-enabled rig."""

    def _repair_rig(self):
        from repro.core.config import RepairConfig
        from repro.faults.degradation import CoalesceGovernor
        from repro.faults.repair import ReorderRepairBuffer

        sim, _sanitizer, machine = make_sanitized()
        repair = ReorderRepairBuffer(
            cpu=None,
            config=RepairConfig(depth=4),
            governor=CoalesceGovernor(),
            sink=lambda pkts: None,
            name="fab-repair",
        )
        machine.repairs = [repair]
        fire(sim, 4)  # clean audit first
        return sim, repair

    @staticmethod
    def _park(repair, seqs, expected=None, deadline=None):
        """Fabricate one flow holding ``seqs``, counters kept consistent."""
        from repro.faults.repair import _FlowState

        class _Tcp:
            def __init__(self, seq):
                self.seq = seq

        class _Held:
            def __init__(self, seq):
                self.tcp = _Tcp(seq)

        st = _FlowState()
        st.held = [(0.0, _Held(seq)) for seq in seqs]
        st.expected = expected
        st.deadline = deadline
        repair.flows["tamper-flow"] = st
        repair.occupancy = len(st.held)
        repair.stats.frames_in = repair.occupancy
        return st

    def test_overfull_flow_caught(self):
        sim, repair = self._repair_rig()
        self._park(repair, [1000, 2000, 3000, 4000, 5000])  # depth is 4
        with pytest.raises(InvariantViolation, match="over the configured depth"):
            fire(sim, 4)

    def test_unsorted_hold_buffer_caught(self):
        sim, repair = self._repair_rig()
        self._park(repair, [2000, 1000])
        with pytest.raises(InvariantViolation, match="out of sequence order"):
            fire(sim, 4)

    def test_release_point_regression_caught(self):
        sim, repair = self._repair_rig()
        # A held frame at or behind ``expected`` would be released behind
        # the flow's release point — duplicate/regressing delivery.
        self._park(repair, [1000, 2000], expected=1500)
        with pytest.raises(InvariantViolation, match="release order would regress"):
            fire(sim, 4)

    def test_overdue_hold_caught(self):
        sim, repair = self._repair_rig()
        st = self._park(repair, [1000], deadline=-1.0)  # expired before now
        assert not st.release_pending
        with pytest.raises(InvariantViolation, match="parked past its deadline"):
            fire(sim, 4)

    def test_occupancy_counter_tamper_caught(self):
        sim, repair = self._repair_rig()
        self._park(repair, [1000])
        repair.occupancy += 1
        repair.stats.frames_in += 1  # keep frame conservation consistent
        with pytest.raises(InvariantViolation, match="disagrees with"):
            fire(sim, 4)

    def test_frame_conservation_tamper_caught_end_to_end(self):
        handle = install()
        try:
            sim, machine, clients, senders = build_stream_rig(
                fast_config(), OptimizationConfig.resilient(repair=True)
            )
            sim.run(until=0.01)  # healthy warm-up under the sanitizer
            machine.repairs[0].stats.frames_in += 1
            with pytest.raises(InvariantViolation, match="conservation broken"):
                sim.run(until=0.02)
        finally:
            uninstall(handle)
