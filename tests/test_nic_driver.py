"""NIC ring, interrupt moderation, and driver path tests."""

import pytest

from repro.core.config import OptimizationConfig
from repro.cpu.categories import Category
from repro.host.client import ClientHost
from repro.host.machine import ReceiverMachine
from repro.net.addresses import ip_from_str
from repro.net.packet import make_data_segment
from repro.nic.nic import Nic
from repro.nic.ring import RxRing
from repro.sim.engine import Simulator

from tests.conftest import fast_config

CLIENT_IP = ip_from_str("10.0.1.1")
SERVER_IP = ip_from_str("10.0.0.1")


def _pkt(seq=0):
    return make_data_segment(CLIENT_IP, SERVER_IP, 10000, 5001, seq=seq, ack=0,
                             payload_len=1448, timestamp=(0, 0))


# ---------------------------------------------------------------- ring
def test_ring_fifo_and_drain():
    ring = RxRing(capacity=4)
    pkts = [_pkt(i) for i in range(3)]
    for p in pkts:
        assert ring.post(p)
    assert ring.drain() == pkts
    assert ring.empty


def test_ring_tail_drop_when_full():
    ring = RxRing(capacity=2)
    assert ring.post(_pkt(0))
    assert ring.post(_pkt(1))
    assert not ring.post(_pkt(2))
    assert ring.dropped == 1
    assert len(ring) == 2


def test_ring_partial_drain():
    ring = RxRing(capacity=8)
    for i in range(5):
        ring.post(_pkt(i))
    out = ring.drain(max_packets=2)
    assert [p.tcp.seq for p in out] == [0, 1]
    assert len(ring) == 3


def test_ring_peak_occupancy():
    ring = RxRing(capacity=8)
    for i in range(5):
        ring.post(_pkt(i))
    ring.drain()
    ring.post(_pkt(9))
    assert ring.peak_occupancy == 5


def test_ring_invalid_capacity():
    with pytest.raises(ValueError):
        RxRing(0)


# ---------------------------------------------------------------- NIC
def test_nic_checksum_offload_marks_packets(sim):
    nic = Nic(sim, checksum_offload=True)
    pkt = _pkt()
    nic.rx_frame(pkt)
    assert pkt.csum_verified
    nic2 = Nic(sim, checksum_offload=False)
    pkt2 = _pkt()
    nic2.rx_frame(pkt2)
    assert not pkt2.csum_verified


def test_interrupt_moderation_batches_high_rate_arrivals(sim):
    """At line rate, one interrupt covers many packets (the aggregation
    opportunity, §5.2)."""
    batches = []

    class FakeDriver:
        def on_interrupt(self, nic):
            batches.append(len(nic.ring.drain()))
            nic.last_drain_count = batches[-1]
            nic.poll_ring()

    nic = Nic(sim, itr_interval_s=250e-6)
    nic.bind_driver(FakeDriver())
    # 12.3 us packet spacing = GbE line rate.
    for i in range(100):
        sim.schedule(i * 12.3e-6, nic.rx_frame, _pkt(i))
    sim.run()
    assert sum(batches) == 100
    assert max(batches) >= 15  # moderation built real batches


def test_low_rate_arrivals_interrupt_immediately(sim):
    """Adaptive ITR: widely-spaced packets see no moderation delay (Table 1)."""
    latencies = []

    class FakeDriver:
        def on_interrupt(self, nic):
            pkts = nic.ring.drain()
            nic.last_drain_count = len(pkts)
            for p in pkts:
                latencies.append(sim.now - p.rx_time)
            nic.poll_ring()

    nic = Nic(sim, itr_interval_s=250e-6)
    nic.bind_driver(FakeDriver())
    for i in range(20):
        sim.schedule(i * 1e-3, nic.rx_frame, _pkt(i))  # 1 ms apart
    sim.run()
    assert max(latencies) == pytest.approx(0.0, abs=1e-9)


# ---------------------------------------------------------------- driver paths
def _machine(sim, opt):
    m = ReceiverMachine(sim, fast_config(n_nics=1), opt, ip=SERVER_IP)
    client = ClientHost(sim, CLIENT_IP)
    m.add_client(client)
    m.listen(5001)
    return m, client


def test_baseline_driver_charges_mac_and_skb_per_packet(sim):
    m, client = _machine(sim, OptimizationConfig.baseline())
    for i in range(10):
        pkt = _pkt(seq=1000 + 1448 * i)
        client.tx_link.send(pkt)
    sim.run(until=0.01)
    prof = m.cpu.profiler
    costs = m.cpu.costs
    assert prof.network_packets == 10
    # MAC processing (the compulsory miss) is inside the driver category.
    driver = prof.cycles[Category.DRIVER]
    assert driver >= 10 * (costs.driver_rx_per_packet + costs.mac_rx_processing)
    assert Category.AGGR not in prof.cycles


def test_optimized_driver_skips_mac_processing(sim):
    m, client = _machine(sim, OptimizationConfig.optimized())
    for i in range(10):
        client.tx_link.send(_pkt(seq=1000 + 1448 * i))
    sim.run(until=0.01)
    prof = m.cpu.profiler
    costs = m.cpu.costs
    # The compulsory miss moved to the aggr category (paper §5.1: 681 cycles).
    assert prof.cycles[Category.AGGR] >= 10 * costs.mac_rx_processing
    driver = prof.cycles[Category.DRIVER]
    assert driver < 10 * (costs.driver_rx_per_packet + costs.mac_rx_processing)


def test_aggregation_disabled_without_checksum_offload(sim):
    """§3.1: no receive checksum offload -> no Receive Aggregation."""
    cfg = fast_config(n_nics=1, checksum_offload=False)
    m = ReceiverMachine(sim, cfg, OptimizationConfig.optimized(), ip=SERVER_IP)
    client = ClientHost(sim, CLIENT_IP)
    m.add_client(client)
    assert not m.drivers[0].aggregation


def test_isr_counts_and_batches(sim):
    m, client = _machine(sim, OptimizationConfig.baseline())
    for i in range(6):
        client.tx_link.send(_pkt(seq=1000 + 1448 * i))
    sim.run(until=0.01)
    d = m.drivers[0].stats
    assert d.rx_packets == 6
    assert 1 <= d.isr_runs <= 6
