"""TCP behavior under sustained loss: backoff, Karn, recovery precedence.

Complements tests/test_tcp_robustness.py (single-drop cases) with the
sustained-loss scenarios the fault-injection subsystem leans on: every
recovery mechanism must engage in the right order (fast retransmit before
RTO, go-back-N only after an RTO) and the delivered stream must stay exact
no matter how hostile the wire."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.tcp.connection import TcpConfig
from repro.tcp.source import InfiniteSource

import sys

sys.path.insert(0, "tests")
from helpers import make_pair  # noqa: E402

MSS = 1448


def _stream(conn, nbytes, seed=3):
    conn.attach_source(InfiniteSource(materialize=True, seed=seed, limit_bytes=nbytes))
    conn.app_wrote()


def test_backoff_doubles_under_sustained_loss(sim):
    """With every data segment lost, successive RTOs space out
    exponentially and the backoff counter climbs."""
    conn_a, _conn_b, sock_a, _sock_b, ta, _ = make_pair(sim)
    ta.filter_fn = lambda pkt: pkt.payload_len == 0  # black-hole all data
    rto_times = []
    original = conn_a._rto_fire

    def spy():
        rto_times.append(sim.now)
        original()

    conn_a._rto_fire = spy
    sock_a.send(b"x" * 100)
    sim.run(until=sim.now + 20.0)
    assert conn_a.stats.rtos >= 4
    assert conn_a._rto_backoff >= 4
    gaps = [b - a for a, b in zip(rto_times, rto_times[1:])]
    for earlier, later in zip(gaps, gaps[1:]):
        assert later == pytest.approx(2 * earlier, rel=0.05)


def test_karn_rule_under_sustained_first_transmission_loss(sim):
    """Drop the *first* transmission of every data segment: all delivered
    data is a retransmission, so (timestamps off) no RTT sample may ever be
    taken — yet the transfer still completes."""
    cfg = TcpConfig(materialize_payload=True, use_timestamps=False)
    conn_a, _conn_b, _sock_a, sock_b, ta, _ = make_pair(sim, config_a=cfg, config_b=cfg)
    seen = set()

    def drop_first_tx(pkt):
        if pkt.payload_len == 0:
            return True
        if pkt.tcp.seq not in seen:
            seen.add(pkt.tcp.seq)
            return False
        return True

    ta.filter_fn = drop_first_tx
    samples_before = conn_a.rtt.samples
    nbytes = 20 * MSS
    _stream(conn_a, nbytes)
    sim.run(until=60.0)
    assert sock_b.bytes_received == nbytes
    assert conn_a.stats.retransmits >= 20
    assert conn_a.rtt.samples == samples_before
    assert sock_b.payload_bytes() == InfiniteSource.pattern(0, nbytes, seed=3)


def test_fast_retransmit_fires_before_rto(sim):
    """One hole with plenty of following segments: three dupACKs repair it
    long before the retransmission timer would — no RTO may fire."""
    conn_a, _conn_b, _sock_a, sock_b, ta, _ = make_pair(sim)
    state = {"n": 0}

    def drop_fifth_segment(pkt):
        if pkt.payload_len > 0:
            state["n"] += 1
            if state["n"] == 5:
                return False
        return True

    ta.filter_fn = drop_fifth_segment
    nbytes = 60 * MSS
    _stream(conn_a, nbytes)
    sim.run(until=2.0)
    assert sock_b.bytes_received == nbytes
    assert conn_a.stats.fast_retransmits == 1
    assert conn_a.stats.rtos == 0
    assert conn_a.stats.retransmits == 1  # exactly the hole, nothing more


def test_rto_go_back_n_repairs_a_burst_without_duplicates(sim):
    """Drop a whole flight: no dupACKs can arrive, so recovery must go
    through the RTO and the go-back-N slow-start retransmission — and the
    delivered stream must come out exact, with no byte delivered twice."""
    conn_a, _conn_b, _sock_a, sock_b, ta, _ = make_pair(sim)
    state = {"n": 0}
    seen = set()

    def drop_tail_burst_once(pkt):
        # Drop the *first transmission* of every segment from the 5th on:
        # the burst reaches the end of the stream, so no later arrival can
        # generate the dupACKs fast retransmit needs.
        if pkt.payload_len > 0 and pkt.tcp.seq not in seen:
            seen.add(pkt.tcp.seq)
            state["n"] += 1
            if state["n"] >= 5:
                return False
        return True

    ta.filter_fn = drop_tail_burst_once
    nbytes = 20 * MSS
    _stream(conn_a, nbytes)
    sim.run(until=10.0)
    assert sock_b.bytes_received == nbytes
    assert conn_a.stats.rtos >= 1
    assert conn_a.stats.fast_retransmits == 0  # no dupACKs were possible
    assert conn_a.stats.retransmits >= 16  # the whole dropped burst again
    assert sock_b.payload_bytes() == InfiniteSource.pattern(0, nbytes, seed=3)
    assert conn_a._rto_backoff == 0  # progress reset the backoff


def test_multi_hole_fast_recovery_beats_per_hole_timeouts(sim):
    """Several separated holes in one window: partial ACKs drive hole-by-
    hole retransmission inside fast recovery, so total repair time is far
    below one RTO per hole."""
    conn_a, _conn_b, _sock_a, sock_b, ta, _ = make_pair(sim)
    holes = {7, 13, 19}
    state = {"n": 0}

    def drop_holes(pkt):
        if pkt.payload_len > 0:
            state["n"] += 1
            if state["n"] in holes:
                return False
        return True

    ta.filter_fn = drop_holes
    nbytes = 80 * MSS
    _stream(conn_a, nbytes)
    t = 0.0
    while sock_b.bytes_received < nbytes and t < 3.0:
        t += 0.01
        sim.run(until=t)
    done_at = t
    assert sock_b.bytes_received == nbytes
    assert conn_a.stats.fast_retransmits >= 1
    assert conn_a.stats.retransmits >= len(holes)
    # One timeout per hole would be >= 0.6 s even at the 200 ms floor;
    # partial-ACK-driven recovery must beat that comfortably.
    assert done_at < 0.5
    assert conn_a.stats.rtos <= 1
    assert sock_b.payload_bytes() == InfiniteSource.pattern(0, nbytes, seed=3)


def test_sustained_random_loss_delivers_exact_stream():
    """10% deterministic-pattern loss for the whole transfer: every
    recovery mechanism interleaves, the stream still arrives byte-exact,
    and a replay is bit-identical."""
    outcomes = []
    for _ in range(2):
        sim = Simulator()
        conn_a, _conn_b, _sock_a, sock_b, ta, _ = make_pair(sim)
        state = {"n": 0}

        def drop_every_tenth(pkt):
            if pkt.payload_len > 0:
                state["n"] += 1
                if state["n"] % 10 == 0:
                    return False
            return True

        ta.filter_fn = drop_every_tenth
        nbytes = 150 * MSS
        _stream(conn_a, nbytes)
        sim.run(until=30.0)
        assert sock_b.bytes_received == nbytes
        assert sock_b.payload_bytes() == InfiniteSource.pattern(0, nbytes, seed=3)
        assert conn_a.stats.retransmits > 0
        outcomes.append((
            sim.events_fired,
            conn_a.stats.retransmits,
            conn_a.stats.fast_retransmits,
            conn_a.stats.rtos,
        ))
    assert outcomes[0] == outcomes[1]
