"""Observability layer (`repro.obs`): units, neutrality, reconciliation.

Three claims are under test (DESIGN.md §8):

1. **Unit behaviour** — tracer ring/drop semantics, Chrome export validity,
   metrics registry kinds and conflicts, sampler scheduling on sim time,
   the observe() lifecycle.
2. **Behaviour neutrality** — measured figure rows are bit-identical with
   full observation (trace + metrics + sampling) on or off.
3. **Reconciliation** — per-stage span counts agree with the subsystems'
   own packet counters, so a trace is evidence rather than narrative.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.config import OptimizationConfig
from repro.experiments.runner import run_experiment
from repro.host.configs import linux_up_config
from repro.obs import (
    MetricsRegistry,
    Stage,
    TimeSeriesSampler,
    Tracer,
    chrome_envelope,
    validate_chrome_trace,
)
from repro.obs.trace import cpu_tid
from repro.sim.engine import Simulator
from repro.workloads.stream import build_stream_rig, run_stream_experiment


@pytest.fixture(autouse=True)
def _obs_reset():
    """Every test starts and ends with observation fully off."""
    obs.reset()
    yield
    obs.reset()


def _rows_json(result) -> str:
    return json.dumps(result.rows, sort_keys=True, default=str)


# ----------------------------------------------------------------------
# tracer units
# ----------------------------------------------------------------------
class TestTracer:
    def test_records_span_and_instant(self):
        tr = Tracer()
        tr.event(Stage.NIC_RX, ts=0.001, args={"seq": 1})
        tr.event(Stage.SOFTIRQ, ts=0.002, dur=0.0005, tid=1)
        assert len(tr) == 2
        assert tr.count(Stage.NIC_RX) == 1
        assert tr.count(Stage.SOFTIRQ) == 1
        assert tr.count(Stage.TCP_RX) == 0

    def test_ring_drops_oldest_and_counts(self):
        tr = Tracer(limit=3)
        for i in range(5):
            tr.event(Stage.NIC_RX, ts=i * 0.001, args={"i": i})
        assert len(tr) == 3
        assert tr.events_dropped == 2
        # The survivors are the *latest* events.
        assert [ev[4]["i"] for ev in tr.events] == [2, 3, 4]
        # Totals survive truncation: reconciliation works on span_counts.
        assert tr.count(Stage.NIC_RX) == 5

    def test_ring_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(limit=0)

    def test_span_duration_feeds_latency_histogram(self):
        tr = Tracer()
        tr.event(Stage.DRIVER_ISR, ts=0.0, dur=1e-6)
        tr.latency("latency.nic_to_tcp", 2e-6)
        hists = tr.latency_histograms()
        assert hists[Stage.DRIVER_ISR]["total"] == 1
        assert hists["latency.nic_to_tcp"]["mean"] == pytest.approx(2000.0)

    def test_chrome_trace_is_valid_and_microseconds(self):
        tr = Tracer()
        tr.event(Stage.TCP_RX, ts=0.01, args={"seq": 7})
        tr.event(Stage.SOFTIRQ, ts=0.01, dur=0.002, tid=3)
        doc = tr.to_chrome_trace("unit")
        assert validate_chrome_trace(doc) == []
        spans = [ev for ev in doc["traceEvents"] if ev.get("ph") == "X"]
        assert spans[0]["ts"] == pytest.approx(10_000.0)  # 0.01 s -> µs
        assert spans[0]["dur"] == pytest.approx(2_000.0)
        # Metadata names the process (run label) and each CPU thread.
        metas = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        names = {ev["args"]["name"] for ev in metas}
        assert "unit" in names and "cpu3" in names

    def test_envelope_one_pid_per_run(self):
        a, b = Tracer(), Tracer()
        a.event(Stage.NIC_RX, ts=0.0)
        b.event(Stage.NIC_RX, ts=0.0)
        doc = chrome_envelope([("base", a), ("opt", b)])
        assert validate_chrome_trace(doc) == []
        pids = {ev["pid"] for ev in doc["traceEvents"] if ev.get("ph") != "M"}
        assert pids == {0, 1}

    def test_validator_flags_broken_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad_event = {"traceEvents": [{"name": "x", "ph": "X", "pid": 0}]}
        assert any("missing" in p for p in validate_chrome_trace(bad_event))

    def test_cpu_tid_parses_trailing_index(self):
        class FakeCpu:
            def __init__(self, name):
                self.name = name

        assert cpu_tid(FakeCpu("server-cpu3")) == 3
        assert cpu_tid(FakeCpu("server-cpu12")) == 12
        assert cpu_tid(FakeCpu("lonecpu")) == 0


# ----------------------------------------------------------------------
# metrics registry units
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("rx.frames")
        c.inc()
        c.inc(4)
        g = reg.gauge("ring.occupancy")
        g.set(17)
        h = reg.histogram("merge.size")
        for v in (1, 2, 3, 8):
            h.observe(v)
        doc = reg.to_json()
        assert doc["rx.frames"] == {"kind": "counter", "value": 5}
        assert doc["ring.occupancy"]["value"] == 17
        assert doc["merge.size"]["value"]["total"] == 4

    def test_reregistration_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_callback_gauge_reads_lazily(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        reg.gauge("live", fn=lambda: state["v"])
        state["v"] = 42
        assert reg.to_json()["live"]["value"] == 42

    def test_collect_sorted_and_render_text(self):
        reg = MetricsRegistry()
        reg.counter("b.second")
        reg.counter("a.first")
        names = [row["name"] for row in reg.collect()]
        assert names == ["a.first", "b.second"]
        text = reg.render_text("t")
        assert "a.first: 0" in text and text.startswith("t: 2 metrics")

    def test_log2_histogram_buckets(self):
        from repro.obs import Log2Histogram

        h = Log2Histogram("h")
        for v in (0, 1, 2, 3, 4):
            h.observe(v)
        buckets = {(b["lo"], b["hi"]): b["count"] for b in h.buckets()}
        # 0 -> [0,1); 1 -> [1,2); 2,3 -> [2,4); 4 -> [4,8)
        assert buckets == {(0, 1): 1, (1, 2): 1, (2, 4): 2, (4, 8): 1}


# ----------------------------------------------------------------------
# sampler units
# ----------------------------------------------------------------------
class TestSampler:
    def test_samples_on_sim_time_and_stops_at_horizon(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval=0.01)
        series = sampler.add_probe("t", lambda: sim.now)
        sampler.start(horizon=0.05)
        sim.run(until=0.2)
        assert sampler.samples_taken == 5
        assert series.times == pytest.approx([0.01, 0.02, 0.03, 0.04, 0.05])
        # The sampler never reschedules past the horizon: the heap drained.
        assert sim.now == 0.2

    def test_rate_probe_differences(self):
        sim = Simulator()
        state = {"bytes": 100}
        sampler = TimeSeriesSampler(sim, interval=0.01)
        series = sampler.add_rate_probe("rate", lambda: state["bytes"], scale=1.0)

        def bump():
            state["bytes"] += 50

        sim.call_at(0.005, bump)
        sim.call_at(0.015, bump)
        sampler.start(horizon=0.02)
        sim.run(until=0.02)
        # Seeded at registration (100): sample 1 sees +50, sample 2 sees +50.
        assert series.values == pytest.approx([5000.0, 5000.0])

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(Simulator(), interval=0.0)

    def test_to_json_and_dashboard(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(sim, interval=0.01)
        sampler.add_probe("x", lambda: 1.0)
        sampler.start(horizon=0.03)
        sim.run(until=0.03)
        doc = sampler.to_json()
        assert doc["samples"] == 3
        assert doc["series"]["x"]["t"] == doc["series"]["x"]["t"]
        assert len(doc["series"]["x"]["v"]) == 3
        assert "x" in sampler.render_dashboard()


# ----------------------------------------------------------------------
# runtime lifecycle
# ----------------------------------------------------------------------
class TestRuntime:
    def test_observe_disabled_yields_none(self):
        with obs.observe("off") as o:
            assert o is None
        assert obs.drain_completed() == []

    def test_observe_enabled_collects_and_archives(self):
        obs.configure(trace=True, metrics=True)
        with obs.observe("run1") as o:
            assert o.tracer is not None and o.metrics is not None
            assert obs.active_tracer() is o.tracer
            assert obs.active_metrics() is o.metrics
        assert obs.active() is None
        done = obs.drain_completed()
        assert [d.label for d in done] == ["run1"]
        assert obs.drain_completed() == []

    def test_observe_is_reentrant(self):
        obs.configure(trace=True)
        with obs.observe("outer") as outer:
            with obs.observe("inner") as inner:
                assert inner is outer
        assert [d.label for d in obs.drain_completed()] == ["outer"]

    def test_reset_clears_config_and_archive(self):
        obs.configure(trace=True, metrics=True, sample_interval=0.01)
        with obs.observe("x"):
            pass
        obs.reset()
        assert not obs.config().enabled
        assert obs.drain_completed() == []

    def test_observation_to_json_shape(self):
        obs.configure(trace=True, metrics=True)
        with obs.observe("doc") as o:
            o.tracer.event(Stage.NIC_RX, ts=0.0)
            o.metrics.counter("c").inc()
        doc = o.to_json()
        assert doc["label"] == "doc"
        assert doc["trace"]["span_counts"] == {Stage.NIC_RX: 1}
        assert doc["metrics"]["c"]["value"] == 1


# ----------------------------------------------------------------------
# schema checker (`python -m repro.obs check`)
# ----------------------------------------------------------------------
class TestSchemaChecker:
    def test_classifies_each_document_kind(self):
        from repro.obs.__main__ import check_document

        assert check_document({"traceEvents": []})[0] == "chrome-trace"
        assert check_document({"records": [{"time": 0.0}]}) == ("capture", [])
        assert check_document({"runs": []})[0] == "observation-bundle"
        kind, problems = check_document(
            {"experiment": "figure3", "breakdown": {"base": {"driver": 1.0}}}
        )
        assert (kind, problems) == ("profile", [])
        assert check_document({"metrics": {}, "label": "x"})[0] == "observation"
        assert check_document({"nope": 1})[0] == "unknown"

    def test_flags_broken_documents(self):
        from repro.obs.__main__ import check_document

        assert check_document({"records": [{"no_time": 1}]})[1]
        assert check_document(
            {"metrics": {"m": {"kind": "bogus", "value": 0}}}
        )[1]
        assert check_document(
            {"series": {"s": {"t": [0.0], "v": []}}}
        )[1]

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        good = tmp_path / "good.json"
        good.write_text(json.dumps({"traceEvents": []}))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["check", str(good)]) == 0
        assert main(["check", str(good), str(bad)]) == 1
        capsys.readouterr()


# ----------------------------------------------------------------------
# behaviour neutrality: instrumented rows are bit-identical
# ----------------------------------------------------------------------
def _run_quick_with_and_without_obs(experiment_id: str):
    plain = run_experiment(experiment_id, quick=True)
    obs.configure(trace=True, metrics=True, sample_interval=0.005)
    try:
        observed = run_experiment(experiment_id, quick=True)
        done = obs.drain_completed()
    finally:
        obs.reset()
    return plain, observed, done


def test_figure07_rows_neutral_under_full_observation():
    plain, observed, done = _run_quick_with_and_without_obs("figure7")
    assert _rows_json(plain) == _rows_json(observed)
    assert done and all(o.tracer is not None and len(o.tracer) > 0 for o in done)


def test_figure12_rows_neutral_under_full_observation():
    plain, observed, done = _run_quick_with_and_without_obs("figure12")
    assert _rows_json(plain) == _rows_json(observed)
    assert done


def test_mq_stream_neutral_under_full_observation():
    from repro.mq.workload import run_mq_stream_experiment

    def point():
        return run_mq_stream_experiment(
            linux_up_config(),
            OptimizationConfig.optimized(),
            queues=2,
            duration=0.05,
            warmup=0.05,
        )

    plain = point()
    obs.configure(trace=True, metrics=True, sample_interval=0.005)
    try:
        observed = point()
        done = obs.drain_completed()
    finally:
        obs.reset()
    # Everything measured matches except the sampler's own scheduler events
    # and the attached series document.
    for name in (
        "system", "optimized", "throughput_mbps", "cpu_utilization",
        "bytes_received", "network_packets", "host_packets", "acks_sent",
        "aggregation_degree", "cycles_per_packet", "breakdown",
        "ring_drops", "retransmits",
    ):
        assert getattr(plain, name) == getattr(observed, name), name
    assert observed.series is not None and done


def test_series_attached_to_result_and_rows_exclude_it():
    obs.configure(sample_interval=0.005)
    try:
        result = run_stream_experiment(
            linux_up_config(), OptimizationConfig.optimized(),
            duration=0.05, warmup=0.05,
        )
    finally:
        obs.reset()
    assert result.series is not None
    assert result.series["samples"] > 0
    assert "throughput_mbps" in result.series["series"]


# ----------------------------------------------------------------------
# reconciliation: span counts vs subsystem counters
# ----------------------------------------------------------------------
def _traced_rig(opt: OptimizationConfig, **config_overrides):
    import dataclasses

    config = linux_up_config()
    if config_overrides:
        config = dataclasses.replace(config, **config_overrides)
    obs.configure(trace=True)
    with obs.observe("recon") as o:
        sim, machine, _clients, senders = build_stream_rig(config, opt)
        sim.run(until=0.1)
    obs.reset()
    return o.tracer, machine, senders


@pytest.mark.parametrize(
    "opt", [OptimizationConfig.baseline(), OptimizationConfig.optimized()],
    ids=["baseline", "optimized"],
)
def test_span_counts_reconcile_with_counters(opt):
    tr, machine, _senders = _traced_rig(opt)
    nics = machine.nics
    assert tr.count(Stage.NIC_RX) == sum(n.stats.rx_frames for n in nics) > 0
    assert tr.count(Stage.RING_POST) == sum(
        q.ring.posted for n in nics for q in n.queues
    )
    assert tr.count(Stage.RING_DROP) == sum(
        q.ring.dropped for n in nics for q in n.queues
    )
    assert tr.count(Stage.TCP_RX) == machine.cpu.profiler.host_packets > 0
    # §4: every template the stack emitted was expanded exactly once.
    assert tr.count(Stage.ACK_TEMPLATE) == tr.count(Stage.ACK_EXPAND)
    if opt.receive_aggregation:
        assert tr.count(Stage.AGGR_RUN) > 0
        assert tr.count(Stage.ACK_TEMPLATE) > 0
    else:
        assert tr.count(Stage.SOFTIRQ) > 0


def test_lro_spans_reconcile_with_engine_counters():
    tr, machine, _senders = _traced_rig(
        OptimizationConfig.baseline(), nic_lro=True
    )
    merged = sum(
        q.lro.merged_segments
        for n in machine.nics for q in n.queues if q.lro is not None
    )
    assert tr.count(Stage.LRO_MERGE) == merged > 0


# ----------------------------------------------------------------------
# determinism of the observability output itself
# ----------------------------------------------------------------------
def test_trace_and_metrics_deterministic_across_seeded_runs():
    docs = []
    for _ in range(2):
        obs.configure(trace=True, metrics=True, sample_interval=0.005)
        with obs.observe("det") as o:
            sim, machine, _clients, senders = build_stream_rig(
                linux_up_config(), OptimizationConfig.optimized()
            )
            from repro.workloads.stream import bind_observation

            bind_observation(o, sim, machine, senders, horizon=0.1)
            sim.run(until=0.1)
        docs.append(
            json.dumps(
                {"obs": o.to_json(), "chrome": o.tracer.to_chrome_trace("det")},
                sort_keys=True,
            )
        )
        obs.reset()
    assert docs[0] == docs[1]


def test_sweep_rows_identical_serial_vs_parallel_with_obs_on():
    """--jobs workers are not observed (documented); rows must still match a
    serial observed run bit-for-bit."""
    from repro.experiments import figure11_aggregation_limit

    obs.configure(trace=True, metrics=True)
    try:
        serial = figure11_aggregation_limit.run(quick=True)
        parallel = figure11_aggregation_limit.run(quick=True, jobs=2)
    finally:
        obs.reset()
    assert _rows_json(serial) == _rows_json(parallel)
