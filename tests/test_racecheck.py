"""The cross-CPU ownership race detector (repro.analysis.racecheck).

Three layers of coverage:

* engine: the after-event hook chain the checker shares with the sanitizer;
* unit: reconciliation semantics (charged / handed-off / uncovered) driven
  through a bare RaceChecker with synthetic accesses;
* integration: clean multi-queue runs are bit-identical with checking on,
  the checker actually observes cross-CPU traffic under RSS, and a
  deliberately uncharged cross-queue access (zeroed CrossCpuCostModel)
  raises a RaceReport carrying both sim-time stacks.
"""

from __future__ import annotations

import pytest

from repro.analysis import racecheck
from repro.analysis.racecheck import RaceChecker, RaceReport
from repro.core.config import OptimizationConfig
from repro.host.client import ClientHost
from repro.host.configs import linux_smp_config, linux_up_config
from repro.mq.costs import CrossCpuCostModel
from repro.mq.machine import MqReceiverMachine
from repro.mq.workload import run_mq_stream_experiment
from repro.net.addresses import ip_from_str
from repro.sim.engine import Simulator
from repro.tcp.connection import TcpConfig
from repro.tcp.source import InfiniteSource
from repro.workloads.stream import run_stream_experiment

from tests.conftest import fast_config

SERVER = ip_from_str("10.0.0.1")


@pytest.fixture(autouse=True)
def _fresh_racecheck_state():
    racecheck.uninstall()
    yield
    racecheck.uninstall()


def build_tampered_rig(queues=2, n_conns=10, nbytes=50_000):
    """A multi-queue rig whose CrossCpuCostModel charges nothing: every
    cross-CPU socket touch is a race the checker must catch."""
    sim = Simulator()
    machine = MqReceiverMachine(
        sim, fast_config(n_nics=1), OptimizationConfig.optimized(),
        queues=queues, steering="rss", ip=SERVER,
        cross=CrossCpuCostModel(
            cache_line_bounce_cycles=0.0, ipi_cycles=0.0,
            remote_wakeup_cycles=0.0,
        ),
    )
    machine.listen(5001)
    client = ClientHost(sim, ip_from_str("10.0.1.1"))
    machine.add_client(client)
    for j in range(n_conns):
        sock = client.connect(SERVER, 5001, config=TcpConfig())
        sock.conn.attach_source(InfiniteSource(seed=11 + j, limit_bytes=nbytes))
    return sim, machine


# ----------------------------------------------------------------------
# engine: the shared after-event hook chain
# ----------------------------------------------------------------------
class TestAfterEventHooks:
    def test_hooks_chain_in_order(self):
        sim = Simulator()
        calls = []
        sim.push_after_event_hook(lambda: calls.append("a"))
        sim.push_after_event_hook(lambda: calls.append("b"))
        sim.post(0.0, lambda: None)
        sim.run()
        assert calls == ["a", "b"]

    def test_remove_leaves_other_hooks(self):
        sim = Simulator()
        calls = []
        first = lambda: calls.append("a")  # noqa: E731
        sim.push_after_event_hook(first)
        sim.push_after_event_hook(lambda: calls.append("b"))
        sim.remove_after_event_hook(first)
        sim.post(0.0, lambda: None)
        sim.run()
        assert calls == ["b"]

    def test_push_is_idempotent_per_hook(self):
        sim = Simulator()
        calls = []
        hook = lambda: calls.append("a")  # noqa: E731
        sim.push_after_event_hook(hook)
        sim.set_after_event_hook(hook)  # historical alias
        sim.post(0.0, lambda: None)
        sim.run()
        assert calls == ["a"]

    def test_clear_removes_everything(self):
        sim = Simulator()
        calls = []
        sim.push_after_event_hook(lambda: calls.append("a"))
        sim.clear_after_event_hook()
        sim.post(0.0, lambda: None)
        sim.run()
        assert calls == []
        assert sim._after_event is None  # fast path restored


# ----------------------------------------------------------------------
# unit: reconciliation semantics
# ----------------------------------------------------------------------
class Obj:
    pass


class TestReconciliation:
    def _checker(self):
        sim = Simulator()
        return sim, RaceChecker(sim)

    def test_uncovered_foreign_access_raises_with_both_stacks(self):
        sim, checker = self._checker()
        obj = Obj()
        checker.tag(obj, 0, "q0 ring")
        sim.post(0.0, lambda: checker._note(obj, "drain", 0, 1, "q0 ring"))
        with pytest.raises(RaceReport) as exc:
            sim.run()
        message = str(exc.value)
        assert "cross-CPU race" in message
        assert "access stack" in message
        assert "ownership established" in message
        assert checker.stats.violations == 1

    def test_own_cpu_access_is_free(self):
        sim, checker = self._checker()
        obj = Obj()
        checker.tag(obj, 1, "q1 ring")
        sim.post(0.0, lambda: checker._note(obj, "drain", 1, 1, "q1 ring"))
        sim.run()
        assert checker.stats.foreign_accesses == 0

    def test_charge_on_accessor_covers(self):
        sim, checker = self._checker()
        obj = Obj()
        checker.tag(obj, 0, "q0 ring")

        def access():
            checker._xcpu_last[1] = sim._events_fired  # accessor charged
            checker._note(obj, "drain", 0, 1, "q0 ring")

        sim.post(0.0, access)
        sim.run()
        assert checker.stats.covered_at_note == 1
        assert checker.stats.violations == 0

    def test_charge_on_owner_covers(self):
        sim, checker = self._checker()
        obj = Obj()

        def access():
            checker._xcpu_last[0] = sim._events_fired  # owner charged
            checker._note(obj, "drain", 0, 1, "q0 ring")

        sim.post(0.0, access)
        sim.run()
        assert checker.stats.covered_at_note == 1

    def test_charge_later_in_same_event_reconciles(self):
        sim, checker = self._checker()
        obj = Obj()

        def access():
            checker._note(obj, "drain", 0, 1, "q0 ring")
            checker._xcpu_last[1] = sim._events_fired  # charge lands after

        sim.post(0.0, access)
        sim.run()
        assert checker.stats.reconciled_in_event == 1
        assert checker.stats.violations == 0

    def test_stale_charge_from_earlier_event_does_not_cover(self):
        sim, checker = self._checker()
        obj = Obj()
        sim.post(0.0, lambda: checker._xcpu_last.__setitem__(1, sim._events_fired))
        sim.post(1.0, lambda: checker._note(obj, "drain", 0, 1, "q0 ring"))
        with pytest.raises(RaceReport):
            sim.run()

    def test_handoff_grants_grace_and_transfers_ownership(self):
        sim, checker = self._checker()
        obj = Obj()
        checker.tag(obj, 0, "lro ctx")

        def migrate():
            checker.handoff(obj, 1)
            checker._note(obj, "migrate", 0, 1, "lro ctx")

        sim.post(0.0, migrate)
        # After the handoff event, CPU 1 owns the object: own-CPU access.
        sim.post(1.0, lambda: checker._note(obj, "drain", checker._owner_of(obj), 1, "lro ctx"))
        sim.run()
        assert checker.stats.handoffs == 1
        assert checker.stats.violations == 0
        assert checker._owner_of(obj) == 1

    def test_detach_stops_checking(self):
        sim, checker = self._checker()
        obj = Obj()
        checker.detach()
        sim.post(0.0, lambda: checker._note(obj, "drain", 0, 1, "q0 ring"))
        sim.run()  # pending never reconciled, never raised
        assert checker.stats.events_checked == 0


# ----------------------------------------------------------------------
# install / uninstall
# ----------------------------------------------------------------------
class TestInstall:
    def test_install_uninstall_restores_classes(self):
        sim_init = Simulator.__init__
        machine_init = MqReceiverMachine.__init__
        handle = racecheck.install()
        assert Simulator.__init__ is not sim_init
        racecheck.uninstall(handle)
        assert Simulator.__init__ is sim_init
        assert MqReceiverMachine.__init__ is machine_init
        assert not racecheck.is_installed()

    def test_install_is_idempotent(self):
        handle = racecheck.install()
        assert racecheck.install() is handle
        racecheck.uninstall(handle)

    def test_simulator_args_forwarded_through_patch(self):
        racecheck.install()
        assert Simulator(use_wheel=False)._wheel is None
        assert Simulator(use_wheel=True)._wheel is not None


# ----------------------------------------------------------------------
# integration: the real multi-queue rig
# ----------------------------------------------------------------------
def _run_mq(**overrides):
    kwargs = dict(
        queues=4, steering="rss", n_connections=50, duration=0.02, warmup=0.01
    )
    kwargs.update(overrides)
    result = run_mq_stream_experiment(
        linux_smp_config(), OptimizationConfig.optimized(), **kwargs
    )
    return (
        result.throughput_mbps,
        sorted(result.breakdown.items()),
        result.events_fired,
    )


class TestCleanRuns:
    def test_rss_run_is_clean_and_checker_sees_cross_traffic(self):
        handle = racecheck.install()
        row = _run_mq()
        stats = [c.stats for c in handle.checkers if c.stats.accesses_noted]
        assert len(stats) == 1
        s = stats[0]
        # RSS steering guarantees cross-CPU socket traffic; every one of
        # those accesses must have been covered by an XCPU charge.
        assert s.foreign_accesses > 0
        assert s.covered_at_note + s.reconciled_in_event == s.foreign_accesses
        assert s.violations == 0
        assert s.objects_tagged > 0
        assert s.events_checked > 0
        assert dict(row[1]).get("xcpu", 0.0) > 0.0

    def test_mq_row_bit_identical_with_racecheck(self):
        off = _run_mq()
        handle = racecheck.install()
        on = _run_mq()
        racecheck.uninstall(handle)
        assert off == on

    def test_classic_stream_row_bit_identical_with_racecheck(self):
        def run():
            r = run_stream_experiment(
                linux_up_config(), OptimizationConfig.optimized(),
                duration=0.02, warmup=0.01,
            )
            return (r.throughput_mbps, sorted(r.breakdown.items()), r.events_fired)

        off = run()
        handle = racecheck.install()
        on = run()
        racecheck.uninstall(handle)
        assert off == on

    def test_coexists_with_sanitizer(self):
        from repro.analysis import sanitizer

        rc_handle = racecheck.install()
        san_handle = sanitizer.install()
        try:
            _run_mq(n_connections=20)
            rc_stats = [c.stats for c in rc_handle.checkers if c.stats.accesses_noted]
            san_stats = [s.stats for s in san_handle.sanitizers if s.stats.events_checked]
            assert rc_stats and rc_stats[0].violations == 0
            assert san_stats and san_stats[0].connection_checks > 0
        finally:
            sanitizer.uninstall(san_handle)
            racecheck.uninstall(rc_handle)


class TestTamper:
    def test_uncharged_cross_queue_access_raises(self):
        racecheck.install()
        sim, machine = build_tampered_rig()
        with pytest.raises(RaceReport) as exc:
            sim.run(until=5.0)
        message = str(exc.value)
        assert "cross-CPU race" in message
        assert "no CrossCpuCostModel charge" in message
        # Both sim-time stacks are present and point into the product code.
        assert "access stack" in message
        assert "ownership established" in message
        assert "kernel.py" in message

    def test_tampered_rig_runs_without_checker(self):
        # Sanity: the tamper is invisible without the checker (that is the
        # point — only behaviour-neutral observation catches it).
        sim, machine = build_tampered_rig()
        sim.run(until=5.0)


class TestOwnershipMap:
    def test_static_table_matches_queue_layout(self):
        sim = Simulator()
        machine = MqReceiverMachine(
            sim, fast_config(n_nics=1), OptimizationConfig.optimized(),
            queues=4, steering="rss", ip=SERVER,
        )
        client = ClientHost(sim, ip_from_str("10.0.1.1"))
        machine.add_client(client)
        table = dict(machine.ownership_map())
        for q in range(4):
            assert table[f"{machine.nics[0].name}.q{q} ring"] == q
            assert table[f"{machine.drivers[0][q].name} softirq"] == q
        # One aggregation engine per queue, owned by that queue's CPU.
        aggr_owners = sorted(
            owner for name, owner in table.items() if "aggr" in name
        )
        assert aggr_owners == [0, 1, 2, 3]
