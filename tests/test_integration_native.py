"""End-to-end integration tests on the costed native machine.

The central correctness claim (paper §3.6): with Receive Aggregation and
Acknowledgment Offload enabled, the application receives byte-for-byte the
same stream it would have received from the baseline stack — under clean
links, loss, and reordering alike.
"""

import pytest

from repro.core.config import OptimizationConfig
from repro.host.client import ClientHost
from repro.host.machine import ReceiverMachine
from repro.net.addresses import ip_from_str
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.tcp.connection import TcpConfig
from repro.tcp.source import InfiniteSource

from tests.conftest import fast_config

SERVER = ip_from_str("10.0.0.1")


def run_transfer(opt, nbytes=400_000, drop=0.0, reorder=0.0, dup=0.0, seed=11,
                 until=20.0, close_after=False):
    """One materialized transfer through the costed machine; returns
    (server socket, machine, client socket)."""
    sim = Simulator()
    machine = ReceiverMachine(sim, fast_config(n_nics=1), opt, ip=SERVER)
    received = []
    machine.listen(5001, lambda sock: setattr(sock, "on_data_cb",
                                              lambda s, payload, length: received.append(payload)))
    client = ClientHost(sim, ip_from_str("10.0.1.1"))
    rng = SeededRng(seed, "impair")
    machine.add_client(client, drop_prob=drop, reorder_prob=reorder, dup_prob=dup, rng=rng)
    sock = client.connect(SERVER, 5001, config=TcpConfig(materialize_payload=True))
    sock.conn.attach_source(InfiniteSource(materialize=True, seed=seed, limit_bytes=nbytes))
    if close_after:
        sock.close()
    sim.run(until=until)
    server_sock = next(iter(machine.kernel.sockets.values()))
    return server_sock, machine, sock, b"".join(p for p in received if p)


@pytest.mark.parametrize("opt_name", ["baseline", "optimized", "aggregation_only"])
def test_clean_transfer_integrity(opt_name):
    opt = getattr(OptimizationConfig, opt_name)()
    server_sock, machine, _, payload = run_transfer(opt, nbytes=300_000, until=5.0)
    assert server_sock.bytes_received == 300_000
    assert payload == InfiniteSource.pattern(0, 300_000, seed=11)
    machine.pool.assert_balanced()


@pytest.mark.parametrize("opt_name", ["baseline", "optimized"])
def test_transfer_integrity_under_loss(opt_name):
    opt = getattr(OptimizationConfig, opt_name)()
    server_sock, machine, client_sock, payload = run_transfer(
        opt, nbytes=200_000, drop=0.02, until=30.0
    )
    assert server_sock.bytes_received == 200_000
    assert payload == InfiniteSource.pattern(0, 200_000, seed=11)
    assert client_sock.conn.stats.retransmits > 0
    machine.pool.assert_balanced()


@pytest.mark.parametrize("opt_name", ["baseline", "optimized"])
def test_transfer_integrity_under_reordering(opt_name):
    opt = getattr(OptimizationConfig, opt_name)()
    server_sock, machine, _, payload = run_transfer(
        opt, nbytes=200_000, reorder=0.05, until=30.0
    )
    assert server_sock.bytes_received == 200_000
    assert payload == InfiniteSource.pattern(0, 200_000, seed=11)
    machine.pool.assert_balanced()
    if opt.receive_aggregation:
        # Reordered packets must have bypassed aggregation or broken chains,
        # never been coalesced out of order (§3.6 case 1).
        stats = machine.kernel.aggregator.stats
        assert stats.flush_mismatch > 0 or stats.bypassed > 0


def test_optimized_fewer_host_packets_same_bytes():
    base_sock, base_m, _, base_payload = run_transfer(OptimizationConfig.baseline(), until=5.0)
    opt_sock, opt_m, _, opt_payload = run_transfer(OptimizationConfig.optimized(), until=5.0)
    assert base_payload == opt_payload
    assert opt_m.profiler.host_packets < base_m.profiler.host_packets
    assert opt_m.profiler.network_packets == pytest.approx(base_m.profiler.network_packets, rel=0.05)


def test_optimized_sends_same_number_of_wire_acks():
    """ACK offload changes WHERE ACKs are built, not HOW MANY reach the wire."""
    _, base_m, _, _ = run_transfer(OptimizationConfig.baseline(), until=5.0)
    _, opt_m, _, _ = run_transfer(OptimizationConfig.optimized(), until=5.0)
    assert opt_m.profiler.acks_sent == pytest.approx(base_m.profiler.acks_sent, rel=0.05)


def test_connection_teardown_through_costed_machine():
    server_sock, machine, client_sock, payload = run_transfer(
        OptimizationConfig.optimized(), nbytes=50_000, until=10.0, close_after=True
    )
    assert payload == InfiniteSource.pattern(0, 50_000, seed=11)
    assert server_sock.remote_closed
    machine.pool.assert_balanced()


def test_multiple_connections_per_nic_keep_streams_separate():
    sim = Simulator()
    machine = ReceiverMachine(sim, fast_config(n_nics=1), OptimizationConfig.optimized(), ip=SERVER)
    machine.listen(5001)
    client = ClientHost(sim, ip_from_str("10.0.1.1"))
    machine.add_client(client)
    socks = []
    for j in range(4):
        sock = client.connect(SERVER, 5001, config=TcpConfig(materialize_payload=True))
        sock.conn.attach_source(InfiniteSource(materialize=True, seed=100 + j, limit_bytes=60_000))
        socks.append(sock)
    sim.run(until=5.0)
    assert len(machine.kernel.sockets) == 4
    for j, (key, srv_sock) in enumerate(sorted(machine.kernel.sockets.items(),
                                               key=lambda kv: kv[0].dst_port)):
        assert srv_sock.bytes_received == 60_000
    machine.pool.assert_balanced()


def test_cpu_time_is_conserved():
    """Total profiled cycles must equal the CPU's busy-cycle count."""
    _, machine, _, _ = run_transfer(OptimizationConfig.optimized(), until=5.0)
    assert sum(machine.profiler.cycles.values()) == pytest.approx(machine.cpu.busy_cycles, rel=1e-9)


def test_rtt_estimates_unaffected_by_aggregation():
    """Paper §3.6: using only the last fragment's timestamp loses no RTT
    precision — sender RTT estimates must match the baseline's.

    The transfer is an exact multiple of the MSS so no trailing delayed-ACK
    fires: RTTM legitimately includes delayed-ACK time, and a 40 ms tail
    sample would skew whichever variant drew the odd segment count.
    """
    nbytes = 200 * 1448
    _, base_m, base_sock, _ = run_transfer(OptimizationConfig.baseline(), nbytes=nbytes, until=5.0)
    _, opt_m, opt_sock, _ = run_transfer(OptimizationConfig.optimized(), nbytes=nbytes, until=5.0)
    base_rtt = base_sock.conn.rtt.srtt
    opt_rtt = opt_sock.conn.rtt.srtt
    assert base_rtt is not None and opt_rtt is not None
    # Timestamp granularity is 1 ms (the paper's own argument): estimates
    # must agree within one tick.
    assert abs(base_rtt - opt_rtt) <= 1e-3
