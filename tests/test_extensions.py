"""Tests for the extension studies (jumbo frames, ITR sweep, bidirectional)."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.base import ExperimentResult, window


@pytest.fixture(scope="module")
def results():
    cache = {}

    def get(eid):
        if eid not in cache:
            cache[eid] = run_experiment(eid, quick=True)
        return cache[eid]

    return get


def test_window_helper():
    assert window(True)[0] < window(False)[0]
    assert all(v > 0 for v in window(True) + window(False))


def test_experiment_result_row_lookup():
    result = ExperimentResult("x", "t", "r", ["a"], [{"a": 1}, {"a": 2}])
    assert result.row(a=2) == {"a": 2}
    with pytest.raises(KeyError):
        result.row(a=99)


# ---------------------------------------------------------------- jumbo frames
def test_jumbo_frames_lift_baseline(results):
    r = results("extension_jumbo")
    std_base = r.row(MTU=1500, stack="Original")
    jumbo_base = r.row(MTU=9000, stack="Original")
    # 6x fewer packets: the baseline stops being CPU-bound.
    assert jumbo_base["throughput Mb/s"] > 1.2 * std_base["throughput Mb/s"]


def test_aggregation_helps_at_both_mtus(results):
    r = results("extension_jumbo")
    for mtu in (1500, 9000):
        base = r.row(MTU=mtu, stack="Original")
        opt = r.row(MTU=mtu, stack="Optimized")
        # "irrespective of the network MTU size" (§6): fewer host packets
        # and no worse CPU per packet.
        assert opt["host pkts/s"] < base["host pkts/s"]
        assert opt["cycles/packet"] < base["cycles/packet"] * 1.02


def test_standard_mtu_optimized_rivals_jumbo_baseline(results):
    r = results("extension_jumbo")
    std_opt = r.row(MTU=1500, stack="Optimized")
    jumbo_base = r.row(MTU=9000, stack="Original")
    assert std_opt["throughput Mb/s"] > 0.8 * jumbo_base["throughput Mb/s"]


# ---------------------------------------------------------------- ITR sweep
def test_aggregation_robust_to_itr(results):
    """Even at ITR=0, CPU-induced ring queueing keeps batches (and thus
    aggregation) alive — the NAPI effect."""
    r = results("extension_itr")
    for row in r.rows:
        assert row["aggregation degree"] > 5
        assert row["throughput Mb/s"] > 4400


def test_fixed_moderation_taxes_latency_adaptive_does_not(results):
    r = results("extension_itr")
    rows = sorted(r.rows, key=lambda row: row["ITR us"])
    # Adaptive RR rate is flat across the sweep.
    adaptive = [row["RR/s adaptive"] for row in rows]
    assert max(adaptive) / min(adaptive) < 1.05
    # Fixed moderation at the largest interval costs a big fraction of RR rate.
    biggest = rows[-1]
    assert biggest["RR/s fixed ITR"] < 0.7 * biggest["RR/s adaptive"]


# ---------------------------------------------------------------- bidirectional
def test_bidirectional_lowers_aggregation_degree(results):
    r = results("extension_bidirectional")
    for row in r.rows:
        assert 1.0 < row["aggregation degree"] < 6.0  # far below the ~11 unidirectional


def test_modified_layer_replays_fragments_stock_does_not(results):
    r = results("extension_bidirectional")
    modified = r.row(**{"TCP layer": "modified (§3.4)"})
    stock = r.row(**{"TCP layer": "stock (ablation)"})
    assert modified["frag acks/s"] > 0
    assert stock["frag acks/s"] == 0
    # Both keep the reverse direction running at high rate.
    assert modified["reverse Mb/s"] > 400
    assert stock["reverse Mb/s"] > 400


# ---------------------------------------------------------------- load sweep
def test_low_load_no_meaningful_regression(results):
    """§5.5: 'the overall performance will never get worse'."""
    r = results("extension_load_sensitivity")
    for row in r.rows:
        regression = row["opt cycles/KB"] / row["base cycles/KB"] - 1
        assert regression < 0.05, row["offered load"]


def test_savings_engage_with_aggregation_degree(results):
    r = results("extension_load_sensitivity")
    rows = r.rows
    low, high = rows[0], rows[-1]
    assert low["aggregation degree"] < 2
    assert high["aggregation degree"] > 4
    assert high["CPU saving %"] > 25


# ---------------------------------------------------------------- TSO
def test_tso_saves_tx_cycles_for_large_responses(results):
    r = results("extension_tso")
    small = r.rows[0]
    large = r.rows[-1]
    # No effect at single-MSS responses, large effect at 64 KiB.
    assert abs(small["tx cycles saved %"]) < 3
    assert large["tx cycles saved %"] > 25
    # Savings grow monotonically with the response size.
    savings = [row["tx cycles saved %"] for row in r.rows]
    assert savings == sorted(savings)


def test_tso_does_not_change_transaction_results(results):
    r = results("extension_tso")
    for row in r.rows:
        assert row["req/s TSO"] == pytest.approx(row["req/s no TSO"], rel=0.05)
