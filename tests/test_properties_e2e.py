"""End-to-end property tests: aggregation invariants under random streams.

These drive randomized packet patterns through the *real* aggregation engine
and a real aggregation-aware connection, and check the §3.6 invariants that
all the specific-case tests instantiate:

1. conservation — every network packet's payload is delivered exactly once,
   in order;
2. equivalence — the ACK numbers generated match an unaggregated receiver's;
3. bounds — no aggregate exceeds the configured limit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.pool import BufferPool
from repro.core.aggregation import AggregationEngine
from repro.core.config import OptimizationConfig
from repro.cpu.cpu import Cpu
from repro.net.addresses import ip_from_str
from repro.net.flow import FlowKey
from repro.net.packet import make_data_segment
from repro.net.tcp_header import TcpFlags
from repro.sim.engine import Simulator
from repro.sim.timers import SimTimers
from repro.tcp.connection import TcpConfig, TcpConnection
from repro.tcp.state import TcpState

SERVER = ip_from_str("10.0.0.1")
CLIENTS = [ip_from_str(f"10.0.1.{i + 1}") for i in range(3)]
MSS = 1000


class _AckRecorder:
    def __init__(self):
        self.acks = []

    def send_packet(self, conn, pkt):
        pass

    def send_acks(self, conn, event):
        self.acks.extend(event.acks)


def _make_conn(sim, flow, aware):
    transport = _AckRecorder()
    conn = TcpConnection(
        flow.reverse(), TcpConfig(mss=MSS, aggregation_aware=aware),
        lambda: sim.now, SimTimers(sim), transport, iss=500,
    )
    conn.state = TcpState.ESTABLISHED
    conn.rcv_nxt = 0
    conn.snd_una = conn.snd_nxt = 501
    return conn, transport


#: Per-flow packet streams: list of (flow index, burst length) — each burst is
#: a run of in-sequence MSS segments; runs from different flows interleave.
bursts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2), st.integers(min_value=1, max_value=12)),
    min_size=1,
    max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(bursts, st.integers(min_value=1, max_value=20), st.integers(min_value=2, max_value=8))
def test_aggregation_invariants_random_streams(burst_list, limit, table_size):
    sim = Simulator()
    cpu = Cpu(sim)
    pool = BufferPool("prop")
    opt = OptimizationConfig.optimized(aggregation_limit=limit)
    opt.lookup_table_size = table_size

    # Receiver connections (aggregation-aware) and plain references.
    conns = {}
    plain = {}
    flows = {}
    next_seq = {}
    for idx, client_ip in enumerate(CLIENTS):
        flow = FlowKey(client_ip, 10000 + idx, SERVER, 5001)
        flows[idx] = flow
        conns[idx], _ = _make_conn(sim, flow, aware=True)
        plain[idx], _ = _make_conn(sim, flow, aware=False)
        next_seq[idx] = 0

    delivered_sizes = []

    def deliver(skb):
        idx = next(i for i, f in flows.items() if f == FlowKey.of_packet(skb.head))
        nr = skb.nr_segments
        assert nr <= limit, "aggregate exceeded configured limit"
        delivered_sizes.append(nr)
        conn = conns[idx]
        if nr > 1:
            conn.on_segment(
                skb.head,
                frag_acks=skb.frag_acks,
                frag_end_seqs=skb.frag_end_seqs,
                frag_windows=skb.frag_windows,
                nr_segments=nr,
                agg_len=skb.payload_len,
            )
        else:
            conn.on_segment(skb.head)
        skb.free()

    engine = AggregationEngine(cpu=cpu, costs=cpu.costs, opt=opt, pool=pool, deliver=deliver)

    total_packets = 0
    for flow_idx, burst_len in burst_list:
        pkts = []
        for _ in range(burst_len):
            seq = next_seq[flow_idx]
            pkt = make_data_segment(
                flows[flow_idx].src_ip, SERVER, flows[flow_idx].src_port, 5001,
                seq=seq, ack=501, payload_len=MSS, timestamp=(1, 0),
                flags=TcpFlags.ACK | TcpFlags.PSH,
            )
            pkt.csum_verified = True
            pkts.append(pkt)
            # The plain reference receiver sees every packet individually.
            plain[flow_idx].on_segment(pkt.copy())
            next_seq[flow_idx] = seq + MSS
        engine.enqueue(pkts)
        engine.run()  # each burst is one softirq batch
        total_packets += burst_len

    # 1. conservation: every byte delivered exactly once, in order.
    for idx in flows:
        assert conns[idx].rcv_nxt == next_seq[idx]
        assert conns[idx].stats.bytes_delivered == next_seq[idx]
        # 2. equivalence with the unaggregated reference.
        assert conns[idx].rcv_nxt == plain[idx].rcv_nxt
        assert conns[idx].transport.acks == plain[idx].transport.acks
        assert conns[idx]._segs_since_ack == plain[idx]._segs_since_ack
    # 3. accounting closes.
    assert sum(delivered_sizes) == total_packets
    assert engine.stats.packets_in == total_packets
    pool.assert_balanced()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.sampled_from(["data", "pure_ack", "sack", "dup"]), min_size=1, max_size=20),
    st.integers(min_value=2, max_value=20),
)
def test_mixed_traffic_never_reorders_within_flow(kinds, limit):
    """Whatever mix of eligible/ineligible packets arrives, delivery order
    within the flow equals arrival order of the underlying segments."""
    sim = Simulator()
    cpu = Cpu(sim)
    pool = BufferPool("prop2")
    opt = OptimizationConfig.optimized(aggregation_limit=limit)
    flow = FlowKey(CLIENTS[0], 10000, SERVER, 5001)

    arrival_order = []
    delivery_order = []

    def deliver(skb):
        for seg in skb.segments():
            delivery_order.append((seg.tcp.seq, seg.payload_len))
        skb.free()

    engine = AggregationEngine(cpu=cpu, costs=cpu.costs, opt=opt, pool=pool, deliver=deliver)

    seq = 0
    pkts = []
    for kind in kinds:
        if kind == "data":
            pkt = make_data_segment(flow.src_ip, SERVER, flow.src_port, 5001,
                                    seq=seq, ack=1, payload_len=MSS, timestamp=(1, 0),
                                    flags=TcpFlags.ACK | TcpFlags.PSH)
            seq += MSS
        elif kind == "pure_ack":
            pkt = make_data_segment(flow.src_ip, SERVER, flow.src_port, 5001,
                                    seq=seq, ack=1, payload_len=0, timestamp=(1, 0))
        elif kind == "sack":
            pkt = make_data_segment(flow.src_ip, SERVER, flow.src_port, 5001,
                                    seq=seq, ack=1, payload_len=MSS, timestamp=(1, 0),
                                    flags=TcpFlags.ACK | TcpFlags.PSH)
            pkt.tcp.options.sack_blocks = [(1, 2)]
            seq += MSS
        else:  # dup: repeat the previous sequence number
            pkt = make_data_segment(flow.src_ip, SERVER, flow.src_port, 5001,
                                    seq=max(0, seq - MSS), ack=1, payload_len=MSS,
                                    timestamp=(1, 0), flags=TcpFlags.ACK | TcpFlags.PSH)
        pkt.csum_verified = True
        arrival_order.append((pkt.tcp.seq, pkt.payload_len))
        pkts.append(pkt)
    engine.enqueue(pkts)
    engine.run()

    assert delivery_order == arrival_order
    pool.assert_balanced()
