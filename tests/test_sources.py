"""Send-side data source tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcp.source import ByteSource, InfiniteSource


# ---------------------------------------------------------------- ByteSource
def test_byte_source_write_read():
    src = ByteSource()
    src.write(b"hello")
    src.write(b"world")
    assert src.available(0) == 10
    assert src.read(0, 5) == b"hello"
    assert src.read(5, 5) == b"world"
    assert src.read(2, 6) == b"llowor"


def test_byte_source_release_frees_prefix():
    src = ByteSource()
    src.write(b"abcdefgh")
    src.release(4)
    assert src.available(4) == 4
    assert src.read(4, 4) == b"efgh"
    with pytest.raises(ValueError):
        src.read(0, 2)  # released


def test_byte_source_read_past_end_rejected():
    src = ByteSource()
    src.write(b"abc")
    with pytest.raises(ValueError):
        src.read(0, 10)


def test_byte_source_write_after_close_rejected():
    src = ByteSource()
    src.close()
    with pytest.raises(RuntimeError):
        src.write(b"x")


def test_byte_source_available_beyond_buffer_is_zero():
    src = ByteSource()
    src.write(b"abc")
    assert src.available(5) == 0


# ---------------------------------------------------------------- InfiniteSource
def test_infinite_source_unbounded_availability():
    src = InfiniteSource()
    assert src.available(0) > 1 << 20
    assert src.available(10**9) > 1 << 20


def test_infinite_source_limit():
    src = InfiniteSource(limit_bytes=1000)
    assert src.available(0) == 1000
    assert src.available(990) == 10
    assert src.available(1000) == 0


def test_infinite_source_length_only_mode_returns_none():
    assert InfiniteSource(materialize=False).read(0, 100) is None


def test_infinite_source_pattern_is_deterministic_and_offset_based():
    src = InfiniteSource(materialize=True, seed=5)
    chunk = src.read(100, 50)
    assert chunk == InfiniteSource.pattern(100, 50, seed=5)
    # Reading [100,150) equals the tail of [0,150).
    assert src.read(0, 150)[100:] == chunk


def test_infinite_source_seeds_differ():
    assert InfiniteSource.pattern(0, 32, seed=1) != InfiniteSource.pattern(0, 32, seed=2)


@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=500))
def test_pattern_concatenation_property(offset, n):
    """pattern(a..b) + pattern(b..c) == pattern(a..c) — retransmitted ranges
    are byte-identical to the originals."""
    half = n // 2
    whole = InfiniteSource.pattern(offset, n, seed=3)
    assert InfiniteSource.pattern(offset, half, 3) + InfiniteSource.pattern(offset + half, n - half, 3) == whole
