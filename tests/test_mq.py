"""Integration tests for the multi-queue RSS receive subsystem.

Covers the properties the extension claims: byte-stream integrity through
per-CPU receive paths (clean links and duplicated frames alike), determinism
per seed, throughput scaling with queue count when the baseline stack is
CPU-bound, the RSS-vs-aRFS cross-CPU cost story, and the sanitizer's
multi-queue audits (including the same-flow-same-queue invariant).
"""

import pytest

from repro.core.config import OptimizationConfig
from repro.host.client import ClientHost
from repro.host.configs import linux_smp_config
from repro.mq.machine import MqReceiverMachine
from repro.mq.workload import run_mq_stream_experiment
from repro.net.addresses import ip_from_str
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.tcp.connection import TcpConfig
from repro.tcp.source import InfiniteSource

from tests.conftest import fast_config

SERVER = ip_from_str("10.0.0.1")


def run_mq_transfer(opt, queues=2, steering="rss", nbytes=200_000, n_conns=4,
                    dup=0.0, seed=11, until=10.0):
    """Materialized transfers through the multi-queue machine; returns
    (machine, per-connection payloads received in order)."""
    sim = Simulator()
    machine = MqReceiverMachine(
        sim, fast_config(n_nics=1), opt, queues=queues, steering=steering, ip=SERVER
    )
    received = {}

    def on_accept(sock):
        port = sock.conn.key.dst_port
        received[port] = []
        sock.on_data_cb = lambda s, payload, length: received[port].append(payload)

    machine.listen(5001, on_accept)
    client = ClientHost(sim, ip_from_str("10.0.1.1"))
    rng = SeededRng(seed, "impair") if dup else None
    machine.add_client(client, dup_prob=dup, rng=rng)
    for j in range(n_conns):
        sock = client.connect(SERVER, 5001, config=TcpConfig(materialize_payload=True))
        sock.conn.attach_source(InfiniteSource(materialize=True, seed=seed + j, limit_bytes=nbytes))
    sim.run(until=until)
    return machine, received


@pytest.mark.parametrize("steering", ["rss", "arfs"])
@pytest.mark.parametrize("opt_name", ["baseline", "optimized"])
def test_mq_transfer_integrity(opt_name, steering):
    opt = getattr(OptimizationConfig, opt_name)()
    machine, received = run_mq_transfer(opt, queues=2, steering=steering,
                                        nbytes=120_000, n_conns=4)
    assert len(machine.kernel.sockets) == 4
    for j, sock in enumerate(sorted(machine.kernel.sockets.values(),
                                    key=lambda s: s.conn.key.dst_port)):
        assert sock.bytes_received == 120_000
        payload = b"".join(p for p in received[sock.conn.key.dst_port] if p)
        assert payload == InfiniteSource.pattern(0, 120_000, seed=11 + j)
    machine.pool.assert_balanced()


@pytest.mark.parametrize("steering", ["rss", "arfs"])
def test_mq_transfer_integrity_under_duplication(steering):
    """Duplicated wire frames must not corrupt or double-count the stream."""
    machine, received = run_mq_transfer(
        OptimizationConfig.optimized(), queues=2, steering=steering,
        nbytes=100_000, n_conns=2, dup=0.05, until=20.0,
    )
    dup_link = machine.clients[0].tx_link
    assert dup_link.stats.frames_duplicated > 0
    for j, sock in enumerate(sorted(machine.kernel.sockets.values(),
                                    key=lambda s: s.conn.key.dst_port)):
        assert sock.bytes_received == 100_000
        payload = b"".join(p for p in received[sock.conn.key.dst_port] if p)
        assert payload == InfiniteSource.pattern(0, 100_000, seed=11 + j)
    machine.pool.assert_balanced()


def test_classic_machine_transfer_under_duplication():
    """The single-path machine also survives duplicate frames (regression
    for the dup_prob plumbing through ReceiverMachine)."""
    from tests.test_integration_native import run_transfer

    server_sock, machine, _, payload = run_transfer(
        OptimizationConfig.optimized(), nbytes=100_000, until=20.0, dup=0.05
    )
    assert server_sock.bytes_received == 100_000
    assert payload == InfiniteSource.pattern(0, 100_000, seed=11)
    machine.pool.assert_balanced()


def test_sockets_are_pinned_round_robin():
    machine, _ = run_mq_transfer(OptimizationConfig.baseline(), queues=2, n_conns=4)
    indices = [sock.app_cpu_index for _, sock in sorted(machine.kernel.sockets.items())]
    assert sorted(indices) == [0, 0, 1, 1]


def test_mq_run_is_deterministic():
    a = run_mq_stream_experiment(linux_smp_config(), OptimizationConfig.baseline(),
                                 queues=4, n_connections=50, duration=0.02, warmup=0.01)
    b = run_mq_stream_experiment(linux_smp_config(), OptimizationConfig.baseline(),
                                 queues=4, n_connections=50, duration=0.02, warmup=0.01)
    assert a.throughput_mbps == b.throughput_mbps  # bit-identical
    assert a.breakdown == b.breakdown


def test_baseline_throughput_scales_with_queues_when_cpu_bound():
    """At 200 connections the single-path baseline is CPU-bound; adding
    receive queues must increase aggregate throughput monotonically."""
    from repro.workloads.stream import run_stream_experiment

    single = run_stream_experiment(linux_smp_config(), OptimizationConfig.baseline(),
                                   n_connections=200, duration=0.03, warmup=0.02)
    results = [single.throughput_mbps]
    for q in (2, 4):
        r = run_mq_stream_experiment(linux_smp_config(), OptimizationConfig.baseline(),
                                     queues=q, n_connections=200,
                                     duration=0.03, warmup=0.02)
        results.append(r.throughput_mbps)
    assert results[0] < results[1] < results[2], results
    assert single.cpu_utilization == pytest.approx(1.0)


def test_arfs_eliminates_cross_cpu_costs():
    rss = run_mq_stream_experiment(linux_smp_config(), OptimizationConfig.baseline(),
                                   queues=4, steering="rss",
                                   n_connections=40, duration=0.02, warmup=0.01)
    arfs = run_mq_stream_experiment(linux_smp_config(), OptimizationConfig.baseline(),
                                    queues=4, steering="arfs",
                                    n_connections=40, duration=0.02, warmup=0.01)
    assert rss.breakdown.get("xcpu", 0.0) > 0.0
    assert arfs.breakdown.get("xcpu", 0.0) == 0.0


def test_mq_cycles_are_conserved_across_cpus():
    """Profiled cycles summed over all CPUs equal total busy cycles."""
    sim = Simulator()
    machine = MqReceiverMachine(sim, fast_config(n_nics=1),
                                OptimizationConfig.optimized(), queues=2, ip=SERVER)
    machine.listen(5001)
    client = ClientHost(sim, ip_from_str("10.0.1.1"))
    machine.add_client(client)
    for j in range(4):
        sock = client.connect(SERVER, 5001, config=TcpConfig(mss=1448))
        sock.conn.attach_source(InfiniteSource(materialize=False, seed=j))
    sim.run(until=0.05)
    snap = machine.merged_profile()
    assert sum(snap.cycles.values()) == pytest.approx(machine.total_busy_cycles(), rel=1e-9)


def test_sanitizer_audits_mq_rig():
    from repro.analysis.sanitizer import install, uninstall

    handle = install()
    try:
        r = run_mq_stream_experiment(linux_smp_config(), OptimizationConfig.optimized(),
                                     queues=4, steering="arfs",
                                     n_connections=16, duration=0.02, warmup=0.01)
        assert r.throughput_mbps > 0
        sanitizer = handle.sanitizers[-1]
        assert sanitizer.stats.deep_audits > 0
    finally:
        uninstall(handle)


def test_sanitizer_catches_flow_requeued_without_resteer():
    """Reprogramming the indirection table under a static-RSS policy moves
    live flows without a generation bump — the same-flow-same-queue audit
    must fail the run."""
    from repro.analysis.sanitizer import InvariantViolation, install, uninstall

    handle = install()
    try:
        sim = Simulator()
        machine = MqReceiverMachine(sim, fast_config(n_nics=1),
                                    OptimizationConfig.baseline(), queues=2, ip=SERVER)
        machine.listen(5001)
        client = ClientHost(sim, ip_from_str("10.0.1.1"))
        machine.add_client(client)
        for j in range(4):
            sock = client.connect(SERVER, 5001, config=TcpConfig(mss=1448))
            sock.conn.attach_source(InfiniteSource(materialize=False, seed=j))
        sim.run(until=0.02)
        table = machine.steering.table
        for slot in range(len(table.slots)):
            table.program(slot, 1 - table.slots[slot])  # swap every queue
        with pytest.raises(InvariantViolation, match="same-flow-same-queue"):
            sim.run(until=0.04)
    finally:
        uninstall(handle)


# ----------------------------------------------------------------------
# sort-and-coalesce on the multi-queue rig: racecheck + ledger stay green
# ----------------------------------------------------------------------
def test_mq_repair_rig_racecheck_and_ledger_green():
    """A 2-queue rig under a reorder storm with the repair stage enabled:
    streams stay byte-intact, the race detector sees no cross-CPU ownership
    violation (each repair buffer lives entirely on its queue's CPU), and
    the cycle ledger still reconciles exactly with the new repair stage
    charging cycles under its own category and lifecycle stage."""
    from repro import obs
    from repro.analysis import racecheck
    from repro.obs import runtime as obs_runtime
    from repro.workloads.stream import bind_ledger

    obs.configure(ledger=True)
    handle = racecheck.install()
    try:
        with obs_runtime.observe("mq-repair") as o:
            sim = Simulator()
            machine = MqReceiverMachine(
                sim, fast_config(n_nics=1),
                OptimizationConfig.resilient(repair=True),
                queues=2, steering="rss", ip=SERVER,
            )
            received = {}

            def on_accept(sock):
                port = sock.conn.key.dst_port
                received[port] = []
                sock.on_data_cb = (
                    lambda s, payload, length: received[port].append(payload)
                )

            machine.listen(5001, on_accept)
            client = ClientHost(sim, ip_from_str("10.0.1.1"))
            machine.add_client(
                client, reorder_prob=0.2, rng=SeededRng(11, "impair")
            )
            for j in range(4):
                sock = client.connect(
                    SERVER, 5001, config=TcpConfig(materialize_payload=True)
                )
                sock.conn.attach_source(
                    InfiniteSource(materialize=True, seed=11 + j, limit_bytes=60_000)
                )
            bind_ledger(o, 0.02, {5001: "stream"})
            sim.run(until=10.0)

        for j, sock in enumerate(sorted(machine.kernel.sockets.values(),
                                        key=lambda s: s.conn.key.dst_port)):
            assert sock.bytes_received == 60_000
            payload = b"".join(p for p in received[sock.conn.key.dst_port] if p)
            assert payload == InfiniteSource.pattern(0, 60_000, seed=11 + j)

        # The sort path actually exercised, and conserved every frame.
        assert sum(r.stats.holds for r in machine.repairs) > 0
        for repair in machine.repairs:
            assert repair.stats.frames_in == repair.stats.frames_out + repair.occupancy

        # No cross-CPU ownership violation anywhere in the repair path.
        stats = [c.stats for c in handle.checkers if c.stats.accesses_noted]
        assert stats
        assert all(s.violations == 0 for s in stats)

        # Exact ledger reconciliation, with repair cycles in their own
        # category and lifecycle stage.
        assert o.ledger.verify(machine.cpus) == []
        assert any(key[1] == "repair" for key in o.ledger.cells)
        # Lifecycle stage "repair" nests under the ISR that ran the stage.
        assert any("repair" in key[2].split(";") for key in o.ledger.cells)
    finally:
        racecheck.uninstall(handle)
        obs.reset()
