"""RTO estimator and Reno congestion-control unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcp.reno import RenoState
from repro.tcp.rtt import RttEstimator


# ---------------------------------------------------------------- RTT / RTO
def test_initial_rto_is_one_second():
    assert RttEstimator().rto == 1.0


def test_first_sample_initializes_srtt():
    est = RttEstimator()
    est.sample(0.1)
    assert est.srtt == pytest.approx(0.1)
    assert est.rttvar == pytest.approx(0.05)


def test_smoothing_converges_toward_stable_rtt():
    est = RttEstimator()
    for _ in range(100):
        est.sample(0.050)
    assert est.srtt == pytest.approx(0.050, rel=0.01)
    assert est.rttvar < 0.001


def test_rto_floor_applies_on_lan():
    """Sub-millisecond LAN RTTs must still yield the Linux 200 ms floor."""
    est = RttEstimator()
    for _ in range(20):
        est.sample(100e-6)
    assert est.rto == pytest.approx(est.min_rto)


def test_rto_grows_with_variance():
    stable, jittery = RttEstimator(min_rto=0.0), RttEstimator(min_rto=0.0)
    for i in range(50):
        stable.sample(0.5)
        jittery.sample(0.5 + (0.3 if i % 2 else -0.3))
    assert jittery.rto > stable.rto


def test_rto_capped_at_max():
    est = RttEstimator()
    est.sample(200.0)
    assert est.rto == est.max_rto


def test_negative_sample_rejected():
    with pytest.raises(ValueError):
        RttEstimator().sample(-0.1)


# ---------------------------------------------------------------- Reno
def test_initial_cwnd_three_segments():
    reno = RenoState(mss=1448)
    assert reno.cwnd == 3 * 1448
    assert reno.in_slow_start


def test_slow_start_grows_one_mss_per_ack():
    reno = RenoState(mss=1000)
    before = reno.cwnd
    reno.on_new_ack(1000)
    assert reno.cwnd == before + 1000


def test_slow_start_growth_capped_by_acked_bytes():
    """An ACK for less than one MSS grows cwnd by only that much."""
    reno = RenoState(mss=1000)
    before = reno.cwnd
    reno.on_new_ack(200)
    assert reno.cwnd == before + 200


def test_congestion_avoidance_linear_growth():
    reno = RenoState(mss=1000)
    reno.ssthresh = 2000  # force CA
    reno.cwnd = 10000
    reno.on_new_ack(1000)
    assert reno.cwnd == 10000 + max(1, 1000 * 1000 // 10000)


def test_fast_retransmit_on_third_dup_ack():
    reno = RenoState(mss=1000)
    reno.cwnd = 10000
    flight = 10000
    assert not reno.on_duplicate_ack(snd_nxt=50000, flight_size=flight)
    assert not reno.on_duplicate_ack(snd_nxt=50000, flight_size=flight)
    assert reno.on_duplicate_ack(snd_nxt=50000, flight_size=flight)
    assert reno.in_recovery
    assert reno.ssthresh == 5000
    assert reno.cwnd == 5000 + 3000


def test_recovery_inflates_per_additional_dup_ack():
    reno = RenoState(mss=1000)
    reno.cwnd = 10000
    for _ in range(3):
        reno.on_duplicate_ack(50000, 10000)
    cwnd = reno.cwnd
    reno.on_duplicate_ack(50000, 10000)
    assert reno.cwnd == cwnd + 1000


def test_full_ack_exits_recovery_and_deflates():
    reno = RenoState(mss=1000)
    reno.cwnd = 10000
    for _ in range(3):
        reno.on_duplicate_ack(50000, 10000)
    assert reno.on_recovery_ack(ack=50000, snd_una=40000) is False
    assert not reno.in_recovery
    assert reno.cwnd == reno.ssthresh


def test_partial_ack_stays_in_recovery():
    """NewReno: a partial ACK retransmits the next hole, stays recovering."""
    reno = RenoState(mss=1000)
    reno.cwnd = 10000
    for _ in range(3):
        reno.on_duplicate_ack(50000, 10000)
    assert reno.on_recovery_ack(ack=45000, snd_una=40000) is True
    assert reno.in_recovery


def test_rto_collapses_window():
    reno = RenoState(mss=1000)
    reno.cwnd = 20000
    reno.on_rto()
    assert reno.cwnd == 1000
    assert reno.ssthresh == 10000
    assert not reno.in_recovery


def test_ssthresh_floor_two_mss():
    reno = RenoState(mss=1000)
    reno.cwnd = 1000
    reno.on_rto()
    assert reno.ssthresh == 2000


@given(st.integers(min_value=1, max_value=100))
def test_slow_start_doubles_per_window(acks):
    """cwnd grows by one MSS per ACK while in slow start (RFC 5681)."""
    reno = RenoState(mss=1448)
    start = reno.cwnd
    for _ in range(acks):
        if not reno.in_slow_start:
            break
        reno.on_new_ack(1448)
    assert reno.cwnd >= start


@given(st.integers(min_value=2, max_value=60))
def test_ca_growth_is_sublinear(acks):
    reno = RenoState(mss=1000)
    reno.ssthresh = 1000
    reno.cwnd = 20000
    for _ in range(acks):
        reno.on_new_ack(1000)
    # ~1 MSS per cwnd/mss ACKs: after `acks` ACKs growth is well below 1 MSS/ACK.
    assert reno.cwnd - 20000 <= acks * 1000 // 15
