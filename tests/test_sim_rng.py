"""Deterministic RNG stream tests."""

from repro.sim.rng import SeededRng


def test_same_seed_and_label_replay_identically():
    a = SeededRng(42, "nic0")
    b = SeededRng(42, "nic0")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_labels_give_independent_streams():
    a = SeededRng(42, "nic0")
    b = SeededRng(42, "nic1")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    assert SeededRng(1, "x").random() != SeededRng(2, "x").random()


def test_derive_creates_stable_child_stream():
    parent = SeededRng(42, "host")
    child1 = parent.derive("link")
    child2 = SeededRng(42, "host").derive("link")
    assert child1.random() == child2.random()


def test_derive_differs_from_parent():
    parent = SeededRng(42, "host")
    child = parent.derive("x")
    assert SeededRng(42, "host").random() != child.random()
