"""Analysis/reporting helper tests."""

import pytest

from repro.analysis.breakdown import analytic_aggregation_curve, breakdown_table, group_reduction_factor
from repro.analysis.reporting import ascii_bar_chart, ascii_series, render_table
from repro.workloads.results import ThroughputResult


def fake_result(optimized, breakdown):
    return ThroughputResult(
        system="T", optimized=optimized, throughput_mbps=1000, cpu_utilization=1.0,
        duration_s=1.0, bytes_received=1, network_packets=1, host_packets=1,
        acks_sent=0, aggregation_degree=1.0,
        cycles_per_packet=sum(breakdown.values()), breakdown=breakdown,
        ring_drops=0, retransmits=0,
    )


def test_breakdown_table_orders_and_labels():
    orig = fake_result(False, {"rx": 100.0, "tx": 50.0})
    opt = fake_result(True, {"rx": 10.0, "tx": 5.0})
    rows = breakdown_table([orig, opt], order=["rx", "tx", "buffer"])
    assert [r["category"] for r in rows] == ["rx", "tx"]  # zero rows dropped
    assert rows[0]["Original"] == 100.0
    assert rows[0]["Optimized"] == 10.0


def test_group_reduction_factor():
    orig = fake_result(False, {"rx": 100.0, "tx": 100.0, "misc": 7.0})
    opt = fake_result(True, {"rx": 25.0, "tx": 25.0, "misc": 7.0})
    assert group_reduction_factor(orig, opt, ["rx", "tx"]) == pytest.approx(4.0)


def test_group_reduction_factor_handles_zero():
    orig = fake_result(False, {"rx": 100.0})
    opt = fake_result(True, {})
    assert group_reduction_factor(orig, opt, ["rx"]) == float("inf")


def test_analytic_curve_shape():
    curve = analytic_aggregation_curve(5000, 5000, [1, 2, 5, 10])
    assert curve[1] == 10000
    assert curve[2] == 7500
    assert curve[10] == 5500
    assert sorted(curve.values(), reverse=True) == [curve[k] for k in sorted(curve)]


def test_render_table_alignment_and_content():
    text = render_table(
        ["name", "value"],
        [{"name": "alpha", "value": 1234.5}, {"name": "b", "value": 2.0}],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in text and "1,234" in text


def test_render_table_missing_cells_blank():
    text = render_table(["a", "b"], [{"a": 1}])
    assert text.splitlines()[-1].strip().startswith("1")


def test_ascii_bar_chart_scales_to_peak():
    text = ascii_bar_chart([("big", 100.0), ("half", 50.0)], width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5


def test_ascii_bar_chart_empty():
    assert ascii_bar_chart([], title="nothing") == "nothing"


def test_ascii_series_plots_all_points():
    pts = [(1, 10.0), (2, 20.0), (3, 15.0)]
    text = ascii_series(pts, width=30, height=8, title="S")
    assert text.count("*") == 3
    assert text.splitlines()[0] == "S"


def test_ascii_series_constant_y():
    text = ascii_series([(1, 5.0), (2, 5.0)], width=20, height=5)
    assert text.count("*") >= 1
