"""TSO driver/stack unit tests."""

import dataclasses

import pytest

from repro.core.config import OptimizationConfig
from repro.host.client import ClientHost
from repro.host.machine import ReceiverMachine
from repro.net.addresses import ip_from_str
from repro.sim.engine import Simulator
from repro.tcp.connection import TcpConfig
from repro.tcp.source import InfiniteSource

from tests.conftest import fast_config

SERVER = ip_from_str("10.0.0.1")


def _tso_rig(sim, tso=True, materialize=True):
    cfg = dataclasses.replace(fast_config(n_nics=1), tso=tso)
    machine = ReceiverMachine(sim, cfg, OptimizationConfig.baseline(), ip=SERVER)
    received = []

    def on_accept(sock):
        sock.conn.attach_source(InfiniteSource(materialize=materialize, seed=3, limit_bytes=100_000))
        if materialize:
            sock.conn.config.materialize_payload = True
        sock.conn.app_wrote()

    machine.listen(5001, on_accept)
    client = ClientHost(sim, ip_from_str("10.0.1.1"))
    machine.add_client(client)
    sock = client.connect(SERVER, 5001, config=TcpConfig(materialize_payload=True, rcv_buf=1 << 20, window_scale=5))
    return machine, sock


def test_tso_split_segments_fit_mtu_and_preserve_bytes(sim):
    machine, sock = _tso_rig(sim)
    sim.run(until=2.0)
    assert sock.bytes_received == 100_000
    assert sock.payload_bytes() == InfiniteSource.pattern(0, 100_000, seed=3)


def test_tso_wire_packets_are_mss_sized(sim):
    machine, sock = _tso_rig(sim)
    from repro.sim.capture import PacketCapture

    cap = PacketCapture(sim)
    cap.tap_link(machine.nics[0].tx_link)
    sim.run(until=2.0)
    sizes = {rec.packet.payload_len for rec in cap.data_packets()}
    assert max(sizes) <= machine.config.mss


def test_oversized_send_without_tso_raises(sim):
    """A >MSS segment reaching a non-TSO driver is a stack bug, not silent."""
    from repro.driver.e1000 import E1000Driver
    from repro.net.packet import make_data_segment

    machine, _ = _tso_rig(sim, tso=False)
    driver = machine.drivers[0]
    big = make_data_segment(SERVER, ip_from_str("10.0.1.1"), 5001, 10000,
                            seq=0, ack=0, payload_len=5000)
    with pytest.raises(RuntimeError):
        driver.tx(big)


def test_tso_reduces_server_tx_cycles(sim):
    machine_tso, sock_tso = _tso_rig(sim, tso=True)
    sim.run(until=2.0)
    sim2 = Simulator()
    machine_plain, sock_plain = _tso_rig(sim2, tso=False)
    sim2.run(until=2.0)
    assert sock_tso.bytes_received == sock_plain.bytes_received == 100_000
    assert machine_tso.cpu.busy_cycles < 0.8 * machine_plain.cpu.busy_cycles
