"""sk_buff and buffer-pool accounting tests."""

import pytest

from repro.buffers.pool import BufferPool
from repro.net.addresses import ip_from_str
from repro.net.packet import make_data_segment

SRC = ip_from_str("10.0.1.1")
DST = ip_from_str("10.0.0.1")


def _pkt(seq=0, length=100, ack=0):
    return make_data_segment(SRC, DST, 1, 2, seq=seq, ack=ack, payload_len=length, timestamp=(0, 0))


def test_alloc_free_balance():
    pool = BufferPool("t")
    skb = pool.alloc(_pkt())
    assert pool.stats.outstanding == 1
    skb.free()
    assert pool.stats.outstanding == 0
    pool.assert_balanced()


def test_double_free_raises():
    pool = BufferPool("t")
    skb = pool.alloc(_pkt())
    skb.free()
    with pytest.raises(RuntimeError):
        skb.free()


def test_leak_detection():
    pool = BufferPool("t")
    pool.alloc(_pkt())
    with pytest.raises(AssertionError):
        pool.assert_balanced()


def test_capacity_exhaustion_returns_none():
    pool = BufferPool("t", capacity=2)
    a = pool.alloc(_pkt())
    b = pool.alloc(_pkt())
    assert pool.alloc(_pkt()) is None
    a.free()
    assert pool.alloc(_pkt()) is not None
    del b


def test_peak_outstanding_tracked():
    pool = BufferPool("t")
    skbs = [pool.alloc(_pkt()) for _ in range(5)]
    for skb in skbs:
        skb.free()
    assert pool.stats.peak_outstanding == 5
    assert pool.stats.allocs == 5
    assert pool.stats.frees == 5


def test_skb_fragment_geometry():
    pool = BufferPool("t")
    skb = pool.alloc(_pkt(seq=0, length=1448))
    assert skb.nr_segments == 1
    assert skb.nr_frags == 0
    assert not skb.is_aggregated
    skb.frags.append(_pkt(seq=1448, length=1448))
    skb.frags.append(_pkt(seq=2896, length=100))
    assert skb.nr_segments == 3
    assert skb.payload_len == 1448 + 1448 + 100
    assert skb.is_aggregated
    assert skb.end_seq == 2996
    skb.free()


def test_skb_payload_bytes_concatenates_fragments():
    pool = BufferPool("t")
    head = make_data_segment(SRC, DST, 1, 2, seq=0, ack=0, payload=b"aaa")
    skb = pool.alloc(head)
    skb.frags.append(make_data_segment(SRC, DST, 1, 2, seq=3, ack=0, payload=b"bb"))
    assert skb.payload_bytes() == b"aaabb"
    skb.free()


def test_skb_payload_bytes_requires_materialized_payload():
    pool = BufferPool("t")
    skb = pool.alloc(_pkt(length=10))
    with pytest.raises(ValueError):
        skb.payload_bytes()
    skb.free()


def test_template_ack_flag():
    pool = BufferPool("t")
    skb = pool.alloc(_pkt(length=0))
    assert not skb.is_template_ack
    skb.template_acks = [100, 200]
    assert skb.is_template_ack
    skb.free()


def test_segments_order():
    pool = BufferPool("t")
    skb = pool.alloc(_pkt(seq=0, length=10))
    f1 = _pkt(seq=10, length=10)
    skb.frags.append(f1)
    assert skb.segments() == [skb.head, f1]
    skb.free()
