"""Tests for the packet slab (freelist recycling of wire packets)."""

import os
import subprocess
import sys

import pytest

from repro.buffers.slab import PacketSlab, SlabViolation
from repro.net.addresses import ip_from_str
from repro.net.packet import PacketTemplate, TcpFlags

SRC = ip_from_str("10.0.1.1")
DST = ip_from_str("10.0.0.1")


def _template(slab=None):
    tmpl = PacketTemplate(SRC, DST, 40000, 5001)
    tmpl.slab = slab
    return tmpl


def _make(tmpl, seq=100, ack=200, payload_len=1448):
    return tmpl.make(seq, ack, TcpFlags.ACK, 65535, payload_len=payload_len)


# ----------------------------------------------------------------------
# freelist mechanics
# ----------------------------------------------------------------------

def test_release_then_acquire_recycles_same_object():
    slab = PacketSlab()
    pkt = _make(_template())
    assert slab.release(pkt)
    assert pkt._slab_free
    assert slab.released == 1
    got = slab.acquire()
    assert got is pkt
    assert not got._slab_free
    assert slab.allocations_saved == 1


def test_double_release_raises():
    slab = PacketSlab()
    pkt = _make(_template())
    slab.release(pkt)
    with pytest.raises(SlabViolation, match="released to slab twice"):
        slab.release(pkt)


def test_materialized_payload_refused():
    """Byte-accurate packets may be retained by correctness checks; the
    slab must leave them to the GC."""
    slab = PacketSlab()
    tmpl = _template()
    pkt = _make(tmpl)
    pkt.payload = b"x" * 8
    pkt.payload_len = 8
    assert not slab.release(pkt)
    assert slab.refused == 1
    assert slab.free == []
    assert not pkt._slab_free


def test_capacity_bounds_freelist():
    slab = PacketSlab(capacity=2)
    tmpl = _template()
    pkts = [_make(tmpl) for _ in range(3)]
    assert slab.release(pkts[0])
    assert slab.release(pkts[1])
    assert not slab.release(pkts[2])
    assert slab.overflow == 1
    assert len(slab.free) == 2


def test_acquire_empty_returns_none():
    assert PacketSlab().acquire() is None


# ----------------------------------------------------------------------
# template integration
# ----------------------------------------------------------------------

def test_template_make_restamps_recycled_packet_fully():
    """A recycled packet must be indistinguishable from a fresh one: every
    header field comes from the template snapshot plus the make() call,
    nothing survives from its previous life."""
    slab = PacketSlab()
    tmpl = _template(slab)
    first = _make(tmpl, seq=111, ack=222, payload_len=1448)
    fresh = _make(_template(), seq=999, ack=888, payload_len=512)

    # Scribble on the dying packet: stale fields must not leak through.
    first.tcp.seq = 0xDEAD
    first.ip.total_length = 1
    first.lro_segs = 99
    slab.release(first)

    reused = _make(tmpl, seq=999, ack=888, payload_len=512)
    assert reused is first  # actually recycled
    assert slab.allocations_saved == 1
    assert reused.tcp.__dict__ == fresh.tcp.__dict__
    assert reused.ip.__dict__ == fresh.ip.__dict__
    assert reused.payload is None
    assert reused.payload_len == 512
    assert reused.wire_len == fresh.wire_len
    assert reused.lro_segs == 1
    assert not reused._slab_free


def test_template_without_slab_allocates_fresh():
    tmpl = _template()
    a, b = _make(tmpl), _make(tmpl)
    assert a is not b


def test_copy_clears_slab_flag():
    pkt = _make(_template())
    slab = PacketSlab()
    clone = pkt.copy()
    slab.release(pkt)
    # The clone is an independent object: freeing the original must not
    # poison it.
    assert not clone._slab_free
    assert slab.release(clone)


# ----------------------------------------------------------------------
# end-to-end: recycling must be invisible to the simulation
# ----------------------------------------------------------------------

def test_stream_experiment_identical_with_and_without_slab():
    """REPRO_NO_SLAB=1 is the A/B kill switch: with it set, the same
    workload must produce bit-identical results — the slab only changes
    allocator traffic, never behavior.  (Run in a subprocess because the
    switch is read at machine construction via the environment.)"""
    code = (
        "from repro.core.config import OptimizationConfig\n"
        "from repro.host.configs import linux_up_config\n"
        "from repro.workloads.stream import run_stream_experiment\n"
        "r = run_stream_experiment(linux_up_config(),"
        " OptimizationConfig.optimized(), duration=0.01, warmup=0.005)\n"
        "print(r.events_fired, r.network_packets, repr(r.throughput_mbps))\n"
    )
    env = dict(os.environ, PYTHONPATH="src")
    with_slab = subprocess.run(
        [sys.executable, "-c", code], env={**env, "REPRO_NO_SLAB": "0"},
        capture_output=True, text=True, check=True,
    ).stdout
    without = subprocess.run(
        [sys.executable, "-c", code], env={**env, "REPRO_NO_SLAB": "1"},
        capture_output=True, text=True, check=True,
    ).stdout
    assert with_slab == without
    assert with_slab.strip()


def test_stream_rig_actually_recycles():
    from repro.core.config import OptimizationConfig
    from repro.host.configs import linux_up_config
    from repro.workloads.stream import build_stream_rig

    sim, machine, clients, senders = build_stream_rig(
        linux_up_config(), OptimizationConfig.optimized()
    )
    if machine.packet_slab is None:
        pytest.skip("slab disabled via REPRO_NO_SLAB")
    sim.run(until=0.01)
    assert machine.packet_slab.allocations_saved > 0
    assert machine.packet_slab.refused == 0
