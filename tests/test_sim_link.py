"""Unit tests for the simulated link (serialization, delay, impairments)."""

import pytest

from repro.net.addresses import ip_from_str
from repro.net.packet import make_data_segment
from repro.sim.engine import Simulator
from repro.sim.link import ETHERNET_WIRE_OVERHEAD, Link
from repro.sim.rng import SeededRng


def _packet(payload_len=1448):
    return make_data_segment(
        ip_from_str("10.0.0.1"), ip_from_str("10.0.0.2"), 1, 2,
        seq=0, ack=0, payload_len=payload_len, timestamp=(1, 0),
    )


def test_delivery_after_serialization_and_propagation(sim):
    got = []
    link = Link(sim, rate_bps=1e9, delay_s=10e-6, sink=got.append)
    pkt = _packet()
    link.send(pkt)
    sim.run()
    assert got == [pkt]
    wire_bits = (pkt.wire_len + ETHERNET_WIRE_OVERHEAD) * 8
    assert sim.now == pytest.approx(wire_bits / 1e9 + 10e-6)


def test_fifo_pacing_at_line_rate(sim):
    """Frames sent back-to-back are spaced by their serialization time."""
    times = []
    link = Link(sim, rate_bps=1e9, delay_s=0.0, sink=lambda p: times.append(sim.now))
    for _ in range(3):
        link.send(_packet())
    sim.run()
    wire_s = (_packet().wire_len + ETHERNET_WIRE_OVERHEAD) * 8 / 1e9
    assert times[0] == pytest.approx(wire_s)
    assert times[1] - times[0] == pytest.approx(wire_s)
    assert times[2] - times[1] == pytest.approx(wire_s)


def test_gigabit_mtu_frame_rate():
    """A GbE link carries ~81,274 MTU frames/s — the paper's §3.6 number."""
    sim = Simulator()
    count = []
    link = Link(sim, rate_bps=1e9, delay_s=0.0, sink=count.append)
    for _ in range(200):
        link.send(_packet(1448))  # 1500B IP + 14 eth + 24 overhead = 1538B wire
    sim.run()
    rate = len(count) / sim.now
    assert rate == pytest.approx(1e9 / (1538 * 8), rel=0.01)


def test_drop_probability(sim):
    rng = SeededRng(7, "link")
    got = []
    link = Link(sim, 1e9, 0.0, sink=got.append, drop_prob=0.5, rng=rng)
    for _ in range(400):
        link.send(_packet())
    sim.run()
    assert 120 < len(got) < 280
    assert link.stats.frames_dropped == 400 - len(got)


def test_reordering_delays_some_frames(sim):
    rng = SeededRng(3, "link")
    order = []
    link = Link(
        sim, 1e9, 10e-6, sink=lambda p: order.append(p.tcp.seq),
        reorder_prob=0.2, reorder_delay_s=200e-6, rng=rng,
    )
    for i in range(100):
        pkt = _packet()
        pkt.tcp.seq = i
        link.send(pkt)
    sim.run()
    assert len(order) == 100
    assert order != sorted(order)
    assert link.stats.frames_reordered > 0


def test_duplication_delivers_copies(sim):
    got = []
    link = Link(sim, 1e9, 10e-6, sink=got.append, dup_prob=1.0, rng=SeededRng(5, "dup"))
    for i in range(10):
        pkt = _packet()
        pkt.tcp.seq = i * 1448
        link.send(pkt)
    sim.run()
    assert len(got) == 20
    assert link.stats.frames_duplicated == 10
    assert link.stats.frames_delivered == 20
    assert link.stats.frames_sent == 10
    # Each original is immediately followed by its copy, as an equal and
    # independent packet object (the receive path mutates what it is handed).
    for orig, dup in zip(got[::2], got[1::2]):
        assert orig is not dup
        assert orig.tcp.seq == dup.tcp.seq


def test_duplication_probability_seeded(sim):
    rng = SeededRng(7, "dup")
    got = []
    link = Link(sim, 1e9, 0.0, sink=got.append, dup_prob=0.25, rng=rng)
    for _ in range(400):
        link.send(_packet())
    sim.run()
    assert link.stats.frames_duplicated == len(got) - 400
    assert 50 < link.stats.frames_duplicated < 150  # ~100 expected

    # Same seed -> bit-identical impairment pattern.
    sim2 = Simulator()
    got2 = []
    link2 = Link(sim2, 1e9, 0.0, sink=got2.append, dup_prob=0.25, rng=SeededRng(7, "dup"))
    for _ in range(400):
        link2.send(_packet())
    sim2.run()
    assert link2.stats.frames_duplicated == link.stats.frames_duplicated


def test_impairment_without_rng_rejected(sim):
    with pytest.raises(ValueError):
        Link(sim, 1e9, 0.0, drop_prob=0.1)
    with pytest.raises(ValueError):
        Link(sim, 1e9, 0.0, dup_prob=0.1)


def test_busy_reflects_in_flight_serialization(sim):
    link = Link(sim, 1e6, 0.0, sink=lambda p: None)  # slow link
    assert not link.busy()
    link.send(_packet())
    assert link.busy()
    sim.run()
    assert not link.busy()


def test_stats_accumulate(sim):
    link = Link(sim, 1e9, 0.0, sink=lambda p: None)
    for _ in range(5):
        link.send(_packet(100))
    sim.run()
    assert link.stats.frames_sent == 5
    assert link.stats.frames_delivered == 5
    assert link.stats.wire_bytes_sent == 5 * (_packet(100).wire_len + ETHERNET_WIRE_OVERHEAD)


# ----------------------------------------------------------------------
# fault-model impairments: corruption, link state, bursty loss
# ----------------------------------------------------------------------
def test_corruption_marks_frames_and_counts(sim):
    got = []
    link = Link(sim, 1e9, 0.0, sink=got.append,
                corrupt_prob=1.0, rng=SeededRng(3, "link"))
    link.send(_packet())
    sim.run()
    # Corrupted frames are *delivered* (the wire does not eat them) but
    # marked, so receiver checksum verification must discard them.
    assert len(got) == 1
    assert got[0].corrupted
    assert link.stats.frames_corrupted == 1
    assert link.stats.frames_delivered == 1
    assert link.stats.frames_dropped == 0


def test_downed_link_black_holes_frames(sim):
    got = []
    link = Link(sim, 1e9, 0.0, sink=got.append)
    link.up = False
    for _ in range(3):
        link.send(_packet())
    sim.run()
    assert got == []
    assert link.stats.frames_dropped == 3
    assert link.stats.frames_dropped_link_down == 3
    link.up = True
    link.send(_packet())
    sim.run()
    assert len(got) == 1


def test_gilbert_elliott_loss_is_bursty(sim):
    """Losses cluster into runs with mean length ~1/p_bad_good — the
    signature that distinguishes the GE channel from independent drops."""
    from repro.sim.link import GilbertElliott

    ge = GilbertElliott(SeededRng(11, "ge"), p_good_bad=0.02,
                        p_bad_good=0.25, loss_bad=1.0)
    outcomes = [ge.loses() for _ in range(50_000)]
    loss_rate = sum(outcomes) / len(outcomes)
    # Stationary loss: p_gb/(p_gb+p_bg) = 0.02/0.27 ~ 7.4%.
    assert 0.05 < loss_rate < 0.10
    bursts = []
    run = 0
    for lost in outcomes:
        if lost:
            run += 1
        elif run:
            bursts.append(run)
            run = 0
    mean_burst = sum(bursts) / len(bursts)
    # Mean dwell in the bad state is 1/0.25 = 4 frames; independent loss at
    # the same rate would give mean bursts of ~1.08.
    assert 3.0 < mean_burst < 5.0
    assert ge.transitions > 0
    assert ge.losses_in_bad == sum(outcomes)


def test_gilbert_elliott_replays_identically():
    from repro.sim.link import GilbertElliott

    def sequence():
        ge = GilbertElliott(SeededRng(42, "ge"), p_good_bad=0.05,
                            p_bad_good=0.3, loss_bad=0.9)
        return [ge.loses() for _ in range(5_000)]

    assert sequence() == sequence()


def test_loss_model_applies_before_independent_drop(sim):
    """An always-bad GE channel loses every frame regardless of drop_prob."""
    from repro.sim.link import GilbertElliott

    got = []
    link = Link(sim, 1e9, 0.0, sink=got.append)
    link.loss_model = GilbertElliott(SeededRng(5, "ge"), p_good_bad=1.0,
                                     p_bad_good=0.0, loss_bad=1.0)
    for _ in range(10):
        link.send(_packet())
    sim.run()
    assert got == []
    assert link.stats.frames_dropped == 10
    assert link.stats.frames_dropped_burst == 10


def test_frame_conservation_under_combined_impairments(sim):
    """drop + reorder + dup + corruption together: every frame ever sent is
    delivered, dropped, or still in flight — the sanitizer's link audit."""
    got = []
    link = Link(sim, 1e9, 10e-6, sink=got.append, drop_prob=0.2,
                reorder_prob=0.3, dup_prob=0.2, corrupt_prob=0.1,
                rng=SeededRng(17, "link"))
    for _ in range(500):
        link.send(_packet(200))
    st = link.stats
    # Mid-flight: the books must already balance.
    assert st.frames_sent + st.frames_duplicated == \
        st.frames_delivered + st.frames_dropped + link.in_flight
    sim.run()
    assert link.in_flight == 0
    assert st.frames_sent == 500
    assert st.frames_duplicated > 0
    assert st.frames_reordered > 0
    assert st.frames_dropped > 0
    assert st.frames_sent + st.frames_duplicated == \
        st.frames_delivered + st.frames_dropped
    assert len(got) == st.frames_delivered


# ----------------------------------------------------------------------
# batched delivery (many-connection rigs opt in)
# ----------------------------------------------------------------------

def test_batch_delivers_all_frames_in_one_event(sim):
    got = []
    link = Link(sim, 1e9, 10e-6, sink=got.append, batch_window_s=25e-6)
    for i in range(3):
        pkt = _packet()
        pkt.tcp.seq = i
        link.send(pkt)
    sim.run()
    # Back-to-back GbE frames serialize ~12.3us apart: all three land in
    # one 25us window -> exactly one delivery event.
    assert [p.tcp.seq for p in got] == [0, 1, 2]
    assert link.stats_batches == 1
    assert sim.events_fired == 1
    assert link.stats.frames_delivered == 3
    assert link.in_flight == 0


def test_batch_window_bounds_added_latency(sim):
    """Every frame is handed over at its window's close — at most
    ``batch_window_s`` after its wire arrival, never earlier than it."""
    window = 25e-6
    times = []
    link = Link(
        sim, 1e9, 10e-6, sink=lambda p: times.append(sim.now),
        batch_window_s=window,
    )
    pkt = _packet()
    link.send(pkt)
    sim.run()
    wire_s = (pkt.wire_len + ETHERNET_WIRE_OVERHEAD) * 8 / 1e9
    arrival = wire_s + 10e-6
    assert times == [pytest.approx(arrival + window)]


def test_batch_closes_and_reopens_across_gaps(sim):
    got = []
    link = Link(sim, 1e9, 0.0, sink=got.append, batch_window_s=25e-6)
    link.send(_packet())
    # Second frame sent after the first window closed -> new batch.
    sim.schedule(200e-6, link.send, _packet())
    sim.run()
    assert len(got) == 2
    assert link.stats_batches == 2


def test_batch_sorts_reorder_delayed_frames_by_arrival(sim):
    """A reorder-delayed frame can land inside a *later* window alongside
    younger frames; within a batch the sink must still see wire-arrival
    order."""
    got = []
    link = Link(sim, 1e9, 10e-6, sink=lambda p: got.append(p.tcp.seq),
                batch_window_s=25e-6)
    early = _packet()
    early.tcp.seq = 0
    late = _packet()
    late.tcp.seq = 1
    # Hand-inject arrivals out of order into one window, as a reorder
    # impairment would.
    link._enqueue(100e-6 + 20e-6, late)
    link._enqueue(100e-6, early)
    sim.run()
    assert got == [0, 1]
    assert link.stats_batches == 1


def test_zero_window_is_per_frame_and_bit_identical(sim):
    """batch_window_s=0 must reproduce the pre-batching link exactly:
    same delivery times, one event per frame."""
    def run(window):
        s = Simulator()
        times = []
        link = Link(s, 1e9, 10e-6, sink=lambda p: times.append(s.now),
                    batch_window_s=window)
        for _ in range(5):
            link.send(_packet())
        s.run()
        return times, s.events_fired

    batched_off, events_off = run(0.0)
    assert events_off == 5
    # And conservation: a batching link delivers the same frames, just
    # grouped; total delivered must match.
    batched_on, events_on = run(25e-6)
    assert len(batched_on) == len(batched_off)
    assert events_on < events_off
