"""RFC 1071 checksum tests, including the incremental updates the
ACK-offload driver relies on."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import (
    checksum_add,
    checksum_update_u32,
    checksums_equivalent,
    internet_checksum,
    verify_checksum,
)


def test_known_vector():
    # Classic example from RFC 1071 §3 (words 0001 f203 f4f5 f6f7).
    data = bytes.fromhex("0001f203f4f5f6f7")
    assert internet_checksum(data) == 0xFFFF - ((0x0001 + 0xF203 + 0xF4F5 + 0xF6F7) % 0xFFFF)


def test_zero_data():
    assert internet_checksum(b"\x00" * 8) == 0xFFFF


def test_odd_length_padded_with_zero():
    assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")


def test_verify_checksum_roundtrip():
    payload = b"hello tcp checksum world"
    csum = internet_checksum(payload)
    full = payload + (b"\x00" if len(payload) % 2 else b"")
    # Embed the checksum as an extra word: sum must come out as all-ones.
    assert verify_checksum(full + struct.pack("!H", csum))


@given(st.binary(min_size=0, max_size=200))
def test_checksum_in_range(data):
    assert 0 <= internet_checksum(data) <= 0xFFFF


@given(st.binary(min_size=2, max_size=100).filter(lambda b: len(b) % 2 == 0))
def test_data_plus_own_checksum_verifies(data):
    csum = internet_checksum(data)
    assert verify_checksum(data + struct.pack("!H", csum))


@given(
    st.binary(min_size=8, max_size=64).filter(lambda b: len(b) % 2 == 0),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=0xFFFF),
)
def test_incremental_word_update_matches_recompute(data, word_index, new_word):
    old = internet_checksum(data)
    pos = word_index * 2
    old_word = (data[pos] << 8) | data[pos + 1]
    updated = bytearray(data)
    updated[pos] = new_word >> 8
    updated[pos + 1] = new_word & 0xFF
    assert checksums_equivalent(checksum_add(old, old_word, new_word), internet_checksum(bytes(updated)))


@given(
    st.binary(min_size=12, max_size=60).filter(lambda b: len(b) % 2 == 0),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_incremental_u32_update_matches_recompute(data, new_value):
    """The exact operation the driver performs on a template ACK's ACK field."""
    old = internet_checksum(data)
    old_value = struct.unpack_from("!I", data, 4)[0]
    updated = bytearray(data)
    struct.pack_into("!I", updated, 4, new_value)
    assert checksums_equivalent(checksum_update_u32(old, old_value, new_value), internet_checksum(bytes(updated)))


def test_checksums_equivalent_predicate():
    assert checksums_equivalent(0x1234, 0x1234)
    assert checksums_equivalent(0x0000, 0xFFFF)
    assert checksums_equivalent(0xFFFF, 0x0000)
    assert not checksums_equivalent(0x0000, 0x0001)
    assert not checksums_equivalent(0x1234, 0x1235)


def test_update_u32_zero_representation_edge():
    """0x0000 and 0xFFFF both encode a zero one's-complement sum (RFC 1624
    §3 pitfall): incremental updates may land on either representation, and
    the equivalence predicate — not ``==`` — must be used to compare."""
    # A no-op update (old value == new value) must keep the checksum
    # *equivalent*, whichever representation comes back.
    for csum in (0x0000, 0xFFFF, 0x1234):
        for value in (0, 1, 0xDEADBEEF, 0xFFFFFFFF):
            assert checksums_equivalent(
                checksum_update_u32(csum, value, value), csum
            )


def test_update_u32_randomized_matches_recompute():
    """Randomized RFC 1624 property: incrementally patching a u32 anywhere
    in a buffer always agrees with a full recompute (fixed seed)."""
    import random

    rng = random.Random(0x5EED)
    for _ in range(200):
        n_words = rng.randrange(4, 33)
        data = bytearray(rng.randbytes(n_words * 2))
        pos = rng.randrange(0, len(data) - 3) & ~1  # 16-bit aligned u32
        old = internet_checksum(bytes(data))
        old_value = struct.unpack_from("!I", data, pos)[0]
        new_value = rng.getrandbits(32)
        struct.pack_into("!I", data, pos, new_value)
        expect = internet_checksum(bytes(data))
        got = checksum_update_u32(old, old_value, new_value)
        assert checksums_equivalent(got, expect), (
            f"pos={pos} old={old:#06x} {old_value:#010x}->{new_value:#010x}: "
            f"got {got:#06x}, recompute {expect:#06x}"
        )


def test_update_u32_chain_of_updates():
    """Chained incremental updates (the template-ACK expansion loop patches
    the same field once per ACK) stay equivalent to a recompute."""
    import random

    rng = random.Random(7)
    data = bytearray(rng.randbytes(40))
    csum = internet_checksum(bytes(data))
    for _ in range(50):
        old_value = struct.unpack_from("!I", data, 8)[0]
        new_value = rng.getrandbits(32)
        struct.pack_into("!I", data, 8, new_value)
        csum = checksum_update_u32(csum, old_value, new_value)
        assert checksums_equivalent(csum, internet_checksum(bytes(data)))
