"""Cache model, cost model, lock model, and profiler tests."""

import pytest

from repro.cpu.cache import CacheModel, PrefetchMode
from repro.cpu.categories import Category
from repro.cpu.costmodel import CostModel
from repro.cpu.locks import LockModel
from repro.cpu.profiler import Profiler


# ---------------------------------------------------------------- cache
def test_lines_rounding():
    cache = CacheModel(line_bytes=64)
    assert cache.lines(0) == 0
    assert cache.lines(1) == 1
    assert cache.lines(64) == 1
    assert cache.lines(65) == 2
    assert cache.lines(1448) == 23


def test_prefetch_modes_order_per_byte_cost():
    """The paper's §2.1 mechanism: more prefetching => cheaper sequential access."""
    cache = CacheModel()
    none = cache.sequential_copy_cycles(1448, PrefetchMode.NONE)
    partial = cache.sequential_copy_cycles(1448, PrefetchMode.PARTIAL)
    full = cache.sequential_copy_cycles(1448, PrefetchMode.FULL)
    assert none > partial > full
    assert none / full > 4  # the shift is dramatic, not marginal


def test_random_touch_is_prefetch_insensitive():
    cache = CacheModel()
    assert cache.random_touch_cycles() == cache.memory_miss_cycles


def test_copy_scales_linearly_in_lines():
    cache = CacheModel()
    one = cache.sequential_copy_cycles(64, PrefetchMode.FULL)
    ten = cache.sequential_copy_cycles(640, PrefetchMode.FULL)
    assert ten == pytest.approx(10 * one)


def test_checksum_cheaper_than_copy_per_byte():
    cache = CacheModel()
    assert (
        cache.sequential_checksum_cycles(1448, PrefetchMode.FULL)
        < cache.sequential_copy_cycles(1448, PrefetchMode.FULL)
    )


# ---------------------------------------------------------------- cost model
def test_cost_model_copy_uses_configured_prefetch():
    fast = CostModel(prefetch=PrefetchMode.FULL)
    slow = CostModel(prefetch=PrefetchMode.NONE)
    assert slow.copy_cycles(1448) > fast.copy_cycles(1448)


def test_baseline_up_calibration_identity():
    """The per-packet constants must sum to the Figure 3 calibration
    targets (documented in DESIGN.md): a drift here silently decalibrates
    every experiment."""
    c = CostModel()
    # driver category per packet: rx work + MAC miss + amortized irq + ack tx share
    driver = c.driver_rx_per_packet + c.mac_rx_processing
    assert 1800 < driver < 2000
    # rx category per host packet
    assert c.ip_rx + c.tcp_rx == pytest.approx(1150)
    # tx per ACK (one ACK per two packets -> ~1040/packet)
    assert c.tcp_tx_ack + c.ip_tx == pytest.approx(2080)
    # buffer: 1.5 skbs per packet (data + half an ACK)
    assert (c.skb_alloc + c.skb_free) * 1.5 == pytest.approx(1350)
    # per-byte at full prefetch
    assert c.copy_cycles(1448) == pytest.approx(1776)


# ---------------------------------------------------------------- locks
def test_lock_model_disabled_is_identity():
    locks = LockModel(enabled=False)
    assert locks.factor(Category.RX) == 1.0
    assert locks.inflate(Category.RX, 100) == 100


def test_lock_model_paper_factors():
    """§2.3: rx +62%, tx +40%, buffer and per-byte unchanged."""
    locks = LockModel(enabled=True)
    assert locks.factor(Category.RX) == pytest.approx(1.62)
    assert locks.factor(Category.TX) == pytest.approx(1.40)
    assert locks.factor(Category.BUFFER) == 1.0
    assert locks.factor(Category.PER_BYTE) == 1.0
    assert locks.factor(Category.AGGR) == 1.0  # per-CPU, lock-free (§3.5)


def test_lock_model_unknown_category_defaults_to_one():
    assert LockModel(enabled=True).factor("nonexistent") == 1.0


# ---------------------------------------------------------------- profiler
def test_profiler_accumulates_and_snapshots():
    prof = Profiler()
    prof.add(Category.RX, 100)
    prof.add(Category.RX, 50)
    prof.add(Category.TX, 30)
    prof.count_network_packet(3)
    snap = prof.snapshot(time=1.0)
    assert snap.cycles[Category.RX] == 150
    assert snap.total_cycles == 180
    assert snap.cycles_per_packet([Category.RX, Category.TX]) == {Category.RX: 50.0, Category.TX: 10.0}


def test_snapshot_diff():
    prof = Profiler()
    prof.add(Category.RX, 100)
    prof.count_network_packet(1)
    s1 = prof.snapshot(1.0)
    prof.add(Category.RX, 40)
    prof.add(Category.MISC, 5)
    prof.count_network_packet(2)
    s2 = prof.snapshot(3.0)
    delta = s2.diff(s1)
    assert delta.cycles[Category.RX] == 40
    assert delta.cycles[Category.MISC] == 5
    assert delta.network_packets == 2
    assert delta.time == 2.0


def test_share_computation():
    prof = Profiler()
    prof.add(Category.RX, 75)
    prof.add(Category.TX, 25)
    snap = prof.snapshot(0.0)
    assert snap.share(Category.RX) == 0.75
    assert snap.share("missing") == 0.0


def test_aggregation_degree():
    prof = Profiler()
    prof.count_network_packet(20)
    prof.count_host_packet(4)
    assert prof.aggregation_degree == 5.0


def test_merged_profiles():
    a, b = Profiler(), Profiler()
    a.add(Category.RX, 10)
    b.add(Category.RX, 20)
    b.add(Category.TX, 5)
    a.count_network_packet(1)
    b.count_network_packet(2)
    merged = a.merged([b])
    assert merged.cycles[Category.RX] == 30
    assert merged.cycles[Category.TX] == 5
    assert merged.network_packets == 3
