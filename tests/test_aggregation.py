"""Receive Aggregation engine unit tests (paper §3.1-§3.3, §3.5-§3.6)."""

import pytest

from repro.buffers.pool import BufferPool
from repro.core.aggregation import AggregationEngine, BypassReason
from repro.core.config import OptimizationConfig
from repro.cpu.categories import Category
from repro.cpu.cpu import Cpu
from repro.net.addresses import ip_from_str
from repro.net.ip import IP_MF
from repro.net.packet import make_data_segment
from repro.net.tcp_header import TcpFlags
from repro.sim.engine import Simulator

CLIENT = ip_from_str("10.0.1.1")
CLIENT2 = ip_from_str("10.0.1.2")
SERVER = ip_from_str("10.0.0.1")
MSS = 1448


def make_engine(limit=20, table_size=8):
    sim = Simulator()
    cpu = Cpu(sim)
    pool = BufferPool("aggr-test")
    delivered = []
    engine = AggregationEngine(
        cpu=cpu,
        costs=cpu.costs,
        opt=OptimizationConfig.optimized(aggregation_limit=limit)
        if limit
        else OptimizationConfig.optimized(),
        pool=pool,
        deliver=delivered.append,
    )
    engine.opt.lookup_table_size = table_size
    return engine, delivered, pool


def seg(seq, ack=0, length=MSS, src_ip=CLIENT, src_port=10000, ts=(5, 0), flags=TcpFlags.ACK | TcpFlags.PSH):
    pkt = make_data_segment(src_ip, SERVER, src_port, 5001, seq=seq, ack=ack,
                            payload_len=length, timestamp=ts, flags=flags)
    pkt.csum_verified = True  # NIC checksum offload (required for aggregation)
    return pkt


def stream(n, start_seq=1000, ack=77, **kw):
    return [seg(start_seq + i * MSS, ack=ack, **kw) for i in range(n)]


# ---------------------------------------------------------------- basic aggregation
def test_in_sequence_packets_coalesce_into_one_skb():
    engine, delivered, pool = make_engine()
    engine.enqueue(stream(5))
    engine.run()
    assert len(delivered) == 1
    skb = delivered[0]
    assert skb.nr_segments == 5
    assert skb.payload_len == 5 * MSS
    assert engine.stats.average_aggregation == 5.0
    skb.free()
    pool.assert_balanced()


def test_header_rewrite_follows_section_3_2():
    engine, delivered, _ = make_engine()
    pkts = [seg(1000 + i * MSS, ack=100 + i, ts=(50 + i, 7)) for i in range(4)]
    pkts[-1].tcp.window = 1234
    engine.enqueue(pkts)
    engine.run()
    head = delivered[0].head
    # Sequence number of the first fragment, ACK/window/timestamp of the last.
    assert head.tcp.seq == 1000
    assert head.tcp.ack == 103
    assert head.tcp.window == 1234
    assert head.tcp.options.timestamp == (53, 7)
    # IP length covers all fragments; checksum recomputed and valid.
    assert head.ip.total_length == head.ip.header_len + head.tcp.header_len + 4 * MSS
    assert head.ip.checksum_ok()
    # TCP checksum NOT recomputed: skb is marked hardware-verified instead.
    assert delivered[0].csum_verified


def test_fragment_metadata_stored_for_modified_tcp():
    engine, delivered, _ = make_engine()
    pkts = [seg(1000 + i * MSS, ack=100 + i) for i in range(3)]
    engine.enqueue(pkts)
    engine.run()
    skb = delivered[0]
    assert skb.frag_acks == [100, 101, 102]
    assert skb.frag_end_seqs == [1000 + MSS, 1000 + 2 * MSS, 1000 + 3 * MSS]
    assert len(skb.frag_windows) == 3


def test_aggregation_limit_flushes_full_aggregates():
    engine, delivered, _ = make_engine(limit=4)
    engine.enqueue(stream(10))
    engine.run()
    assert [s.nr_segments for s in delivered] == [4, 4, 2]
    assert engine.stats.flush_limit == 2
    assert engine.stats.flush_work_conserving == 1


def test_work_conserving_flush_on_empty_queue():
    """§3.5: when the queue drains, partial aggregates are delivered at once."""
    engine, delivered, _ = make_engine(limit=20)
    engine.enqueue(stream(3))
    engine.run()
    assert len(delivered) == 1  # partial (3 < 20) still delivered
    assert engine.stats.flush_work_conserving == 1
    # A later batch starts fresh.
    engine.enqueue(stream(2, start_seq=1000 + 3 * MSS))
    engine.run()
    assert len(delivered) == 2


def test_single_packet_runs_deliver_immediately():
    """Table 1's precondition: a lone packet is never held back."""
    engine, delivered, _ = make_engine()
    engine.enqueue(stream(1))
    engine.run()
    assert len(delivered) == 1
    assert delivered[0].nr_segments == 1


# ---------------------------------------------------------------- flow separation
def test_different_flows_do_not_mix():
    engine, delivered, _ = make_engine()
    a = stream(3, src_ip=CLIENT, start_seq=1000)
    b = stream(3, src_ip=CLIENT2, start_seq=5000)
    interleaved = [pkt for pair in zip(a, b) for pkt in pair]
    engine.enqueue(interleaved)
    engine.run()
    assert len(delivered) == 2
    assert all(skb.nr_segments == 3 for skb in delivered)
    srcs = {skb.head.ip.src_ip for skb in delivered}
    assert srcs == {CLIENT, CLIENT2}


def test_same_ip_different_port_is_a_different_flow():
    engine, delivered, _ = make_engine()
    engine.enqueue(stream(2, src_port=10000) + stream(2, src_port=10001))
    engine.run()
    assert len(delivered) == 2


def test_lookup_table_eviction_lru():
    engine, delivered, _ = make_engine(table_size=2)
    engine.enqueue(
        stream(1, src_ip=CLIENT)
        + stream(1, src_ip=CLIENT2)
        + stream(1, src_ip=ip_from_str("10.0.1.3"))  # evicts CLIENT (LRU)
    )
    engine.run()
    assert engine.stats.flush_eviction == 1
    assert len(delivered) == 3


# ---------------------------------------------------------------- sequencing rules
def test_gap_in_sequence_flushes_and_restarts():
    engine, delivered, _ = make_engine()
    pkts = stream(2) + [seg(1000 + 5 * MSS)]  # hole after packet 2
    engine.enqueue(pkts)
    engine.run()
    assert len(delivered) == 2
    assert delivered[0].nr_segments == 2
    assert delivered[1].nr_segments == 1
    assert engine.stats.flush_mismatch == 1


def test_ack_number_regression_breaks_aggregation():
    """§3.1: later fragments must have ack >= earlier fragments'."""
    engine, delivered, _ = make_engine()
    p1, p2 = stream(2, ack=500)
    p2.tcp.ack = 400  # regress
    engine.enqueue([p1, p2])
    engine.run()
    assert len(delivered) == 2


def test_duplicate_sequence_not_aggregated():
    engine, delivered, _ = make_engine()
    p = seg(1000)
    engine.enqueue([p, seg(1000)])  # same seq twice (retransmission)
    engine.run()
    assert len(delivered) == 2


# ---------------------------------------------------------------- bypass rules (§3.1)
@pytest.mark.parametrize(
    "mutate,reason",
    [
        (lambda p: setattr(p, "payload_len", 0), BypassReason.PURE_ACK),
        (lambda p: setattr(p.tcp, "flags", TcpFlags.SYN), BypassReason.SPECIAL_FLAGS),
        (lambda p: setattr(p.tcp, "flags", TcpFlags.ACK | TcpFlags.FIN), BypassReason.SPECIAL_FLAGS),
        (lambda p: setattr(p.tcp, "flags", TcpFlags.ACK | TcpFlags.URG), BypassReason.SPECIAL_FLAGS),
        (lambda p: setattr(p.ip, "options", b"\x94\x04\x00\x00"), BypassReason.IP_OPTIONS),
        (lambda p: setattr(p.ip, "frag", IP_MF), BypassReason.IP_FRAGMENT),
        (lambda p: setattr(p, "csum_verified", False), BypassReason.NO_CSUM_OFFLOAD),
        (lambda p: setattr(p.ip, "checksum", p.ip.checksum ^ 0xFFFF), BypassReason.BAD_IP_CHECKSUM),
        (lambda p: p.tcp.options.sack_blocks.append((1, 2)), BypassReason.TCP_OPTIONS),
        (lambda p: setattr(p.tcp.options, "mss", 1460), BypassReason.TCP_OPTIONS),
    ],
)
def test_bypass_reasons(mutate, reason):
    engine, delivered, _ = make_engine()
    pkt = seg(1000)
    mutate(pkt)
    engine.enqueue([pkt])
    engine.run()
    assert engine.stats.bypassed == 1
    assert engine.stats.bypass_reasons == {reason.value: 1}
    assert len(delivered) == 1  # passed through unmodified
    assert delivered[0].nr_segments == 1


def test_bypass_flushes_partial_first_preserving_order():
    """§3.1: a partial aggregate is delivered before any subsequent
    unaggregated packet of the same connection."""
    engine, delivered, _ = make_engine()
    data = stream(3)
    pure_ack = seg(1000 + 3 * MSS, length=0, flags=TcpFlags.ACK)
    engine.enqueue(data + [pure_ack])
    engine.run()
    assert len(delivered) == 2
    assert delivered[0].nr_segments == 3  # the aggregate first
    assert delivered[1].head.is_pure_ack
    assert engine.stats.flush_bypass_ordering == 1


def test_bypass_of_other_flow_does_not_flush():
    engine, delivered, _ = make_engine()
    engine.enqueue(stream(2, src_ip=CLIENT))
    bad = seg(9999, src_ip=CLIENT2)
    bad.csum_verified = False
    engine.enqueue([bad])
    engine.run()
    # Bypass (CLIENT2) delivered; CLIENT partial flushed only at queue-empty.
    assert engine.stats.flush_bypass_ordering == 0
    assert engine.stats.flush_work_conserving == 1


def test_timestamp_presence_mismatch_breaks_chain():
    engine, delivered, _ = make_engine()
    with_ts = seg(1000, ts=(5, 0))
    without_ts = seg(1000 + MSS, ts=None)
    engine.enqueue([with_ts, without_ts])
    engine.run()
    assert len(delivered) == 2


# ---------------------------------------------------------------- cost accounting
def test_costs_charged_to_aggr_and_buffer_categories():
    engine, delivered, _ = make_engine()
    engine.enqueue(stream(5))
    engine.run()
    prof = engine.cpu.profiler.cycles
    costs = engine.costs
    # Early demux (miss + match) charged once per network packet.
    expected_aggr = 5 * (costs.mac_rx_processing + costs.aggr_match_per_packet)
    expected_aggr += 4 * costs.aggr_chain_per_fragment
    expected_aggr += costs.aggr_finalize_per_host_packet
    assert prof[Category.AGGR] == pytest.approx(expected_aggr)
    # One sk_buff allocation for the whole aggregate (§3.5).
    assert prof[Category.BUFFER] == pytest.approx(costs.skb_alloc)


def test_limit_one_charges_no_rewrite_cost():
    engine, delivered, _ = make_engine(limit=1)
    engine.enqueue(stream(4))
    engine.run()
    assert len(delivered) == 4
    prof = engine.cpu.profiler.cycles
    costs = engine.costs
    expected = 4 * (costs.mac_rx_processing + costs.aggr_match_per_packet + costs.aggr_deliver_single)
    assert prof[Category.AGGR] == pytest.approx(expected)


def test_invalid_limit_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        AggregationEngine(
            cpu=Cpu(sim),
            costs=Cpu(sim).costs,
            opt=OptimizationConfig(receive_aggregation=True, aggregation_limit=0),
            pool=BufferPool("x"),
            deliver=lambda s: None,
        )


def test_payload_bytes_preserved_through_aggregation():
    engine, delivered, _ = make_engine()
    payloads = [bytes([i]) * 100 for i in range(4)]
    pkts = []
    offset = 1000
    for body in payloads:
        pkt = make_data_segment(CLIENT, SERVER, 10000, 5001, seq=offset, ack=1,
                                payload=body, timestamp=(5, 0))
        pkt.csum_verified = True
        pkts.append(pkt)
        offset += len(body)
    engine.enqueue(pkts)
    engine.run()
    assert delivered[0].payload_bytes() == b"".join(payloads)
