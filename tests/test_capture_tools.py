"""Packet-capture tooling tests."""

import pytest

from repro.net.addresses import ip_from_str
from repro.net.flow import FlowKey
from repro.net.packet import make_data_segment
from repro.net.tcp_header import TcpFlags
from repro.sim.capture import PacketCapture
from repro.sim.engine import Simulator
from repro.sim.link import Link

A = ip_from_str("10.0.0.1")
B = ip_from_str("10.0.0.2")


def _pkt(seq=0, length=100, sport=1, flags=TcpFlags.ACK):
    return make_data_segment(A, B, sport, 80, seq=seq, ack=0, payload_len=length, flags=flags)


def test_capture_records_with_timestamps(sim):
    cap = PacketCapture(sim)
    sim.schedule(1e-3, cap.record, _pkt())
    sim.schedule(2e-3, cap.record, _pkt(seq=100))
    sim.run()
    assert len(cap) == 2
    assert cap.records[0].time == pytest.approx(1e-3)


def test_tap_link_preserves_delivery(sim):
    got = []
    link = Link(sim, 1e9, 0.0, sink=got.append)
    cap = PacketCapture(sim)
    cap.tap_link(link)
    link.send(_pkt())
    sim.run()
    assert len(got) == 1
    assert len(cap) == 1


def test_filters(sim):
    cap = PacketCapture(sim)
    cap.record(_pkt(length=100, sport=1))
    cap.record(_pkt(length=0, sport=2))
    cap.record(_pkt(length=50, sport=1, flags=TcpFlags.ACK | TcpFlags.FIN))
    assert len(cap.data_packets()) == 2
    assert len(cap.pure_acks()) == 1
    assert len(cap.by_port(80)) == 3
    assert len(cap.by_flow(FlowKey(A, 1, B, 80))) == 2
    assert len(cap.with_flags(TcpFlags.FIN)) == 1


def test_throughput_and_bytes(sim):
    cap = PacketCapture(sim)
    sim.schedule(0.0, cap.record, _pkt(length=1000))
    sim.schedule(1.0, cap.record, _pkt(seq=1000, length=1000))
    sim.run()
    assert cap.bytes_captured() == 2000
    assert cap.throughput_bps() == pytest.approx(16000)


def test_sequence_gap_detection(sim):
    cap = PacketCapture(sim)
    flow = FlowKey(A, 1, B, 80)
    cap.record(_pkt(seq=0, length=100))
    cap.record(_pkt(seq=100, length=100))
    cap.record(_pkt(seq=500, length=100))  # gap
    assert cap.sequence_gaps(flow) == 1


def test_max_records_cap(sim):
    cap = PacketCapture(sim, max_records=2)
    for i in range(5):
        cap.record(_pkt(seq=i))
    assert len(cap) == 2
    assert cap.dropped_records == 3


def test_dump_renders(sim):
    cap = PacketCapture(sim, name="t")
    cap.record(_pkt())
    text = cap.dump()
    assert "t" in text and "seq=0" in text


def test_interarrival(sim):
    cap = PacketCapture(sim)
    for t in (0.0, 0.5, 1.5):
        sim.schedule(t, cap.record, _pkt())
    sim.run()
    assert cap.interarrival_times() == [pytest.approx(0.5), pytest.approx(1.0)]


def test_ring_keeps_latest_records(sim):
    cap = PacketCapture(sim, max_records=2)
    for i in range(5):
        cap.record(_pkt(seq=i * 100))
    # Drop-oldest ring: the survivors are the most recent packets.
    assert [rec.packet.tcp.seq for rec in cap.records] == [300, 400]
    assert cap.records_dropped == 3
    # Legacy alias still reads the same counter.
    assert cap.dropped_records == cap.records_dropped


def test_dump_mentions_dropped(sim):
    cap = PacketCapture(sim, name="ring", max_records=1)
    cap.record(_pkt())
    cap.record(_pkt(seq=100))
    assert "1 older dropped" in cap.dump()


def test_capture_to_json_validates(sim, tmp_path):
    import json

    from repro.obs.__main__ import check_document

    cap = PacketCapture(sim, name="exp", max_records=2)
    sim.schedule(1e-3, cap.record, _pkt(seq=0))
    sim.schedule(2e-3, cap.record, _pkt(seq=100, flags=TcpFlags.ACK | TcpFlags.PSH))
    sim.run()
    doc = cap.to_json()
    assert doc["capture"] == "exp"
    assert doc["records_dropped"] == 0
    assert doc["records"][0]["time"] == pytest.approx(1e-3)
    assert doc["records"][1]["seq"] == 100
    assert "PSH" in doc["records"][1]["flags"]
    assert check_document(doc) == ("capture", [])

    out = tmp_path / "cap.json"
    cap.write_json(str(out))
    assert check_document(json.loads(out.read_text())) == ("capture", [])
