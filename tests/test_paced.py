"""Paced (application-limited) sender tests."""

import pytest

from repro.sim.engine import Simulator
from repro.tcp.source import InfiniteSource
from repro.workloads.paced import PacedSender

import sys
sys.path.insert(0, "tests")
from helpers import make_pair  # noqa: E402


def test_paced_rate_is_respected(sim):
    conn_a, conn_b, sock_a, sock_b, *_ = make_pair(sim)
    sender = PacedSender(sim, conn_a, rate_bps=10e6, chunk_bytes=5000)
    sim.run(until=sim.now + 1.0)
    observed_bps = sock_b.bytes_received * 8
    assert observed_bps == pytest.approx(10e6, rel=0.05)


def test_paced_burst_mode_same_average(sim):
    conn_a, conn_b, sock_a, sock_b, *_ = make_pair(sim)
    sender = PacedSender(sim, conn_a, rate_bps=8e6, chunk_bytes=4000, burst_chunks=4)
    sim.run(until=sim.now + 1.0)
    assert sock_b.bytes_received * 8 == pytest.approx(8e6, rel=0.08)


def test_paced_stop_halts_writes(sim):
    conn_a, conn_b, sock_a, sock_b, *_ = make_pair(sim)
    sender = PacedSender(sim, conn_a, rate_bps=10e6, chunk_bytes=5000)
    sim.run(until=sim.now + 0.2)
    sender.stop()
    written = sender.bytes_written
    sim.run(until=sim.now + 0.5)
    assert sender.bytes_written == written


def test_paced_rejects_bad_params(sim):
    conn_a, *_ = make_pair(sim)
    with pytest.raises(ValueError):
        PacedSender(sim, conn_a, rate_bps=0)
    with pytest.raises(ValueError):
        PacedSender(sim, conn_a, rate_bps=1e6, burst_chunks=0)
