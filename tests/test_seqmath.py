"""Sequence-number arithmetic, including wraparound properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro.tcp.seqmath import (
    seq_add,
    seq_between,
    seq_diff,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
    seq_max,
    seq_min,
)

seqs = st.integers(min_value=0, max_value=0xFFFFFFFF)
small = st.integers(min_value=0, max_value=(1 << 30))


def test_basic_ordering():
    assert seq_lt(1, 2)
    assert seq_gt(2, 1)
    assert seq_le(2, 2)
    assert seq_ge(2, 2)


def test_wraparound_ordering():
    near_top = 0xFFFFFFF0
    wrapped = seq_add(near_top, 0x100)
    assert wrapped == 0xF0
    assert seq_lt(near_top, wrapped)
    assert seq_gt(wrapped, near_top)


def test_diff_signs():
    assert seq_diff(100, 50) == 50
    assert seq_diff(50, 100) == -50
    assert seq_diff(0x10, 0xFFFFFFF0) == 0x20  # across the wrap


def test_between_across_wrap():
    assert seq_between(5, 0xFFFFFFF0, 0x10)
    assert not seq_between(0x20, 0xFFFFFFF0, 0x10)


def test_min_max():
    assert seq_max(0xFFFFFFF0, 5) == 5  # 5 is "after" near-top
    assert seq_min(0xFFFFFFF0, 5) == 0xFFFFFFF0


@given(seqs, small)
def test_add_then_diff_recovers_offset(base, offset):
    assert seq_diff(seq_add(base, offset), base) == offset


@given(seqs, st.integers(min_value=1, max_value=(1 << 30)))
def test_strict_order_antisymmetry(base, offset):
    later = seq_add(base, offset)
    assert seq_lt(base, later)
    assert not seq_lt(later, base)
    assert seq_gt(later, base)


@given(seqs)
def test_reflexivity(a):
    assert seq_le(a, a)
    assert seq_ge(a, a)
    assert not seq_lt(a, a)
    assert seq_diff(a, a) == 0


@given(seqs, small, small)
def test_transitivity_within_window(base, d1, d2):
    b = seq_add(base, d1 // 2)
    c = seq_add(b, d2 // 2)
    if seq_le(base, b) and seq_le(b, c):
        assert seq_le(base, c) or seq_diff(c, base) < 0  # window overflow tolerated
