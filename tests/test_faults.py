"""Fault-injection subsystem: plans, the injector, recovery, degradation.

Covers the resilience acceptance criteria end to end:

* fault plans are plain data — JSON round-trippable, validated, hashable;
* every fault kind injects at its scheduled window, restores the targeted
  state afterwards, and the rig *recovers* (goodput resumes, streams stay
  intact);
* the driver watchdog recovers a hung NIC without leaking or
  double-counting a single packet;
* the coalescing governor degrades/restores with real hysteresis, pays off
  under the hardware-LRO reorder pathology, and leaves the clean-wire fast
  path bit-identical;
* armed plans replay bit-identically run after run.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.core.config import OptimizationConfig
from repro.faults.degradation import CoalesceGovernor
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    ImpairmentConfig,
    sample_plan,
    storm_plan,
)
from repro.host.configs import linux_up_config
from repro.tcp.seqmath import seq_diff
from repro.tcp.source import InfiniteSource
from repro.workloads.stream import SERVER_PORT, build_stream_rig, run_stream_experiment

import sys

sys.path.insert(0, "tests")
from conftest import fast_config  # noqa: E402


def _server_bytes(machine) -> int:
    return sum(s.bytes_received for s in machine.kernel.sockets.values())


def _flat_drivers(machine):
    flat = []
    for entry in machine.drivers:
        flat.extend(entry if isinstance(entry, (list, tuple)) else [entry])
    return flat


def _assert_streams_intact(machine, senders) -> None:
    """Length-accounting form of §3.2 equivalence (byte-exact content is
    covered by the materialized tests below)."""
    kernel = machine.kernel
    for sender in senders:
        key = sender.conn.key.reverse()
        sock, conn = kernel.sockets[key], kernel.connections[key]
        assert sock.bytes_received == seq_diff(conn.rcv_nxt, conn.irs) - 1
        assert seq_diff(sender.conn.snd_una, sender.conn.iss) - 1 <= \
            seq_diff(conn.rcv_nxt, conn.irs) - 1


# ----------------------------------------------------------------------
# plans: validation, JSON, hashing
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = sample_plan()
        doc = json.loads(json.dumps(plan.to_json()))
        assert FaultPlan.from_json(doc) == plan

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "plan.json")
        plan = sample_plan()
        plan.dump(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic_ray", start=0.0, duration=0.1)

    @pytest.mark.parametrize("start,duration", [(-0.1, 0.1), (0.0, 0.0), (0.0, -1.0)])
    def test_bad_window_rejected(self, start, duration):
        with pytest.raises(ValueError, match="fault window"):
            FaultSpec("corrupt", start=start, duration=duration)

    @pytest.mark.parametrize("intensity", [-0.1, 1.5])
    def test_bad_intensity_rejected(self, intensity):
        with pytest.raises(ValueError, match="intensity"):
            FaultSpec("corrupt", start=0.0, duration=0.1, intensity=intensity)

    @pytest.mark.parametrize("field,value", [("drop", 1.0), ("reorder", -0.1), ("dup", 2.0)])
    def test_bad_probability_rejected(self, field, value):
        with pytest.raises(ValueError, match="probability"):
            ImpairmentConfig(**{field: value})

    def test_horizon(self):
        assert FaultPlan().horizon == 0.0
        assert storm_plan("corrupt", 0.2, start=0.02, duration=0.05).horizon == \
            pytest.approx(0.07)

    def test_targeting(self):
        spec = FaultSpec("link_flap", start=0.0, duration=0.1, target="1")
        assert not spec.hits(0) and spec.hits(1)
        assert FaultSpec("link_flap", start=0.0, duration=0.1).hits(7)

    def test_plans_are_picklable(self):
        plan = FaultPlan(specs=[FaultSpec("corrupt", start=0.0, duration=0.1)])
        assert isinstance(plan.specs, tuple)  # list input normalized
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_any_active(self):
        assert not ImpairmentConfig().any_active
        assert ImpairmentConfig(drop=0.1).any_active
        assert ImpairmentConfig(plan=sample_plan()).any_active


# ----------------------------------------------------------------------
# every fault kind, end to end: inject -> restore -> recover
# ----------------------------------------------------------------------
_INTENSITY = {
    "loss_burst": 0.3,
    "corrupt": 0.3,
    "reorder_storm": 0.5,
    "dup_storm": 0.3,
    "ring_storm": 0.9,
    "pool_exhaust": 0.9,
    "link_flap": 1.0,
    "nic_hang": 1.0,
}


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_fault_kind_injects_restores_and_recovers(kind):
    plan = storm_plan(kind, _INTENSITY[kind], start=0.02, duration=0.02)
    sim, machine, _clients, senders = build_stream_rig(
        fast_config(), OptimizationConfig.optimized(),
        impairments=ImpairmentConfig(plan=plan),
    )
    ring_caps = [q.ring.capacity for nic in machine.nics for q in nic.queues]
    pool_cap = machine.pool.capacity

    sim.run(until=0.05)  # past the fault window
    bytes_mid = _server_bytes(machine)
    injector = machine.fault_injector
    assert injector.stats.faults_begun == 1
    assert injector.stats.faults_ended == 1
    assert injector.stats.active == 0
    assert injector.windows[0].kind == kind

    # Injected state fully restored.
    for link in machine.links:
        assert link.up
        assert link.loss_model is None
        for attr in ("drop_prob", "reorder_prob", "dup_prob", "corrupt_prob"):
            assert getattr(link, attr) == 0.0
    assert [q.ring.capacity for nic in machine.nics for q in nic.queues] == ring_caps
    assert machine.pool.capacity == pool_cap
    assert not any(nic.hung for nic in machine.nics)

    # The rig recovers: goodput resumes after the window (run past the
    # 200 ms minimum RTO so even timeout-driven recovery completes).
    sim.run(until=0.35)
    assert _server_bytes(machine) > bytes_mid
    _assert_streams_intact(machine, senders)

    # Wire-frame conservation held through the storm.
    for link in machine.links:
        st = link.stats
        assert st.frames_sent + st.frames_duplicated == \
            st.frames_delivered + st.frames_dropped + link.in_flight
        assert link.in_flight >= 0


def test_target_selects_a_single_link():
    plan = FaultPlan(specs=(
        FaultSpec("link_flap", start=0.01, duration=0.01, target="1"),
    ))
    sim, machine, _clients, _senders = build_stream_rig(
        fast_config(), OptimizationConfig.optimized(),
        impairments=ImpairmentConfig(plan=plan),
    )
    sim.run(until=0.015)
    assert machine.links[0].up
    assert not machine.links[1].up
    sim.run(until=0.03)
    assert machine.links[1].up
    assert machine.links[1].stats.frames_dropped_link_down > 0
    assert machine.links[0].stats.frames_dropped_link_down == 0


def test_arm_is_idempotent():
    plan = storm_plan("corrupt", 0.2, start=0.01, duration=0.01)
    sim, machine, _clients, _senders = build_stream_rig(
        fast_config(), OptimizationConfig.optimized(),
        impairments=ImpairmentConfig(plan=plan),
    )
    machine.fault_injector.arm()  # second arm must not double-schedule
    sim.run(until=0.03)
    assert machine.fault_injector.stats.faults_begun == 1
    assert machine.fault_injector.stats.faults_ended == 1


# ----------------------------------------------------------------------
# driver watchdog: hung NIC detected, reset conserves every packet
# ----------------------------------------------------------------------
def test_watchdog_reset_recovers_hung_nic_without_leaking():
    plan = storm_plan("nic_hang", 1.0, start=0.02, duration=0.02)
    sim, machine, _clients, senders = build_stream_rig(
        fast_config(), OptimizationConfig.optimized(),
        impairments=ImpairmentConfig(plan=plan),
    )
    sim.run(until=0.35)

    drivers = _flat_drivers(machine)
    assert sum(d.stats.resets for d in drivers) >= 1
    assert all(d.stats.watchdog_ticks > 0 for d in drivers)
    assert not any(nic.hung for nic in machine.nics)
    for driver in drivers:
        ring = driver.queue.ring
        # Ring conservation: nothing materialized, nothing vanished.
        assert ring.posted == ring.drained + len(ring)
        # Reset conservation: every drained descriptor was either handed to
        # the stack or flushed by the reset — never both, never neither.
        assert ring.drained == driver.stats.rx_packets + driver.stats.rx_dropped_reset

    # And the connections came back.
    assert _server_bytes(machine) > 0
    _assert_streams_intact(machine, senders)


# ----------------------------------------------------------------------
# degradation governor: hysteresis unit behavior
# ----------------------------------------------------------------------
class TestCoalesceGovernor:
    def test_validation(self):
        with pytest.raises(ValueError, match="hysteresis"):
            CoalesceGovernor(enter_threshold=0.1, exit_threshold=0.2)
        with pytest.raises(ValueError, match="alpha"):
            CoalesceGovernor(alpha=0.0)

    def test_enters_only_after_warmup(self):
        gov = CoalesceGovernor()
        now = 0.0
        for _ in range(gov.min_packets - 1):
            now += 1e-5
            assert not gov.observe(True, now)  # rate high, warmup gate holds
        assert gov.rate > gov.enter_threshold
        assert gov.stats.enters == 0
        now += 1e-5
        assert gov.observe(True, now)  # warmup satisfied -> degrade
        assert gov.degraded
        assert gov.stats.enters == 1

    def test_exit_requires_low_rate_and_quiet_period(self):
        gov = CoalesceGovernor()
        now = 0.0
        for _ in range(gov.min_packets):
            now += 1e-5
            gov.observe(True, now)
        assert gov.degraded
        last_disorder = now
        # Clean packets arrive fast: the EWMA decays below exit_threshold
        # long before quiet_period_s elapses -> must stay degraded.
        while gov.rate >= gov.exit_threshold:
            now += 1e-5
            assert gov.observe(False, now)
        assert now - last_disorder < gov.quiet_period_s
        # Still inside the quiet window: no exit.
        assert gov.observe(False, last_disorder + gov.quiet_period_s - 1e-6)
        # Quiet period over AND rate low: restore.
        assert not gov.observe(False, last_disorder + gov.quiet_period_s + 1e-6)
        assert not gov.degraded
        assert gov.stats.exits == 1

    def test_no_flapping_inside_a_storm(self):
        """Alternating disorder holds the EWMA between the thresholds:
        exactly one enter, zero exits — the hysteresis gap absorbs it."""
        gov = CoalesceGovernor()
        now = 0.0
        for i in range(2000):
            now += 1e-5
            gov.observe(i % 2 == 0, now)
        assert gov.stats.enters == 1
        assert gov.stats.exits == 0
        assert gov.degraded

    def test_reenters_on_second_storm(self):
        gov = CoalesceGovernor()
        now = 0.0
        for _ in range(gov.min_packets):
            now += 1e-5
            gov.observe(True, now)
        while gov.degraded:
            now += 5e-4
            gov.observe(False, now)
        for _ in range(2 * gov.min_packets):
            now += 1e-5
            gov.observe(True, now)
        assert gov.stats.enters == 2
        assert gov.stats.exits == 1
        assert gov.degraded


# ----------------------------------------------------------------------
# acceptance criterion: degradation demonstrably helps, clean wire unchanged
# ----------------------------------------------------------------------
def test_degradation_beats_forced_coalescing_under_lro_reorder():
    """Hardware LRO under a sustained reorder storm is the Wu et al.
    pathology: sessions park in-flight packets, so every out-of-order
    arrival becomes a burst plus late dupACKs.  The governor's auto-disable
    must win over coalescing forced on (measured margin is ~6x; assert a
    conservative 1.5x so the test stays robust to cost-model tuning)."""
    config = dataclasses.replace(linux_up_config(), nic_lro=True, name="Linux UP/LRO")
    imp = ImpairmentConfig(reorder=0.2, seed=971)
    opt = run_stream_experiment(
        config, OptimizationConfig.optimized(),
        duration=0.05, warmup=0.05, impairments=imp,
    )
    resil = run_stream_experiment(
        config, OptimizationConfig.resilient(),
        duration=0.05, warmup=0.05, impairments=imp,
    )
    assert resil.throughput_mbps >= 1.5 * opt.throughput_mbps


@pytest.mark.parametrize("lro", [False, True], ids=["softagg", "hw-lro"])
def test_clean_wire_resilient_is_bit_identical_to_optimized(lro):
    """With no storm the governor never trips: the resilient build must be
    indistinguishable from the optimized one — same events, same bytes."""
    config = fast_config()
    if lro:
        config = dataclasses.replace(config, nic_lro=True)
    opt = run_stream_experiment(
        config, OptimizationConfig.optimized(), duration=0.03, warmup=0.02)
    resil = run_stream_experiment(
        config, OptimizationConfig.resilient(), duration=0.03, warmup=0.02)
    assert resil.events_fired == opt.events_fired
    assert resil.throughput_mbps == opt.throughput_mbps
    assert resil.bytes_received == opt.bytes_received


# ----------------------------------------------------------------------
# byte-exact stream content through a storm (materialized payloads)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind,intensity", [("corrupt", 0.3), ("loss_burst", 0.3)])
def test_delivered_bytes_equal_sent_bytes_through_storm(kind, intensity):
    plan = storm_plan(kind, intensity, start=0.005, duration=0.01)
    sim, machine, _clients, senders = build_stream_rig(
        fast_config(), OptimizationConfig.optimized(),
        impairments=ImpairmentConfig(plan=plan), materialize=True,
    )
    received = {}

    def on_accept(sock):
        chunks = received.setdefault(sock.conn.key, [])
        sock.on_data_cb = lambda _s, payload, _n: chunks.append(payload)

    machine.listen(SERVER_PORT, on_accept=on_accept)  # install collectors
    sim.run(until=0.04)

    for j, sender in enumerate(senders):
        key = sender.conn.key.reverse()
        got = b"".join(received[key])
        sock = machine.kernel.sockets[key]
        assert len(got) == sock.bytes_received > 0
        # Source j sends pattern(seed=j); the delivered prefix must match
        # byte for byte — no corruption leaked past the checksum, no
        # retransmit delivered twice.
        assert got == InfiniteSource.pattern(0, len(got), seed=j)


# ----------------------------------------------------------------------
# determinism: an armed plan replays bit-identically
# ----------------------------------------------------------------------
def test_armed_plan_replays_bit_identically():
    def one_run():
        imp = ImpairmentConfig(drop=0.01, reorder=0.02, dup=0.01, plan=sample_plan())
        sim, machine, _clients, senders = build_stream_rig(
            fast_config(), OptimizationConfig.optimized(), impairments=imp)
        sim.run(until=0.18)
        link = machine.links[0].stats
        return (
            sim.events_fired,
            _server_bytes(machine),
            sum(s.conn.stats.retransmits for s in senders),
            link.frames_sent, link.frames_dropped, link.frames_corrupted,
            link.frames_reordered, link.frames_duplicated,
            link.frames_dropped_burst, link.frames_dropped_link_down,
        )

    assert one_run() == one_run()


# ----------------------------------------------------------------------
# plumbing: experiments that cannot honor impairments reject them
# ----------------------------------------------------------------------
def test_experiments_without_impairment_support_reject_loudly():
    from repro.experiments.runner import run_experiment

    with pytest.raises(ValueError, match="does not take wire impairments"):
        run_experiment("figure3", quick=True,
                       impairments=ImpairmentConfig(drop=0.01))
