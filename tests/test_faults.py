"""Fault-injection subsystem: plans, the injector, recovery, degradation.

Covers the resilience acceptance criteria end to end:

* fault plans are plain data — JSON round-trippable, validated, hashable;
* every fault kind injects at its scheduled window, restores the targeted
  state afterwards, and the rig *recovers* (goodput resumes, streams stay
  intact);
* the driver watchdog recovers a hung NIC without leaking or
  double-counting a single packet;
* the coalescing governor degrades/restores with real hysteresis, pays off
  under the hardware-LRO reorder pathology, and leaves the clean-wire fast
  path bit-identical;
* armed plans replay bit-identically run after run.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.core.config import OptimizationConfig
from repro.faults.degradation import CoalesceGovernor
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    ImpairmentConfig,
    sample_plan,
    storm_plan,
)
from repro.host.configs import linux_up_config
from repro.tcp.seqmath import seq_diff
from repro.tcp.source import InfiniteSource
from repro.workloads.stream import SERVER_PORT, build_stream_rig, run_stream_experiment

import sys

sys.path.insert(0, "tests")
from conftest import fast_config  # noqa: E402


def _server_bytes(machine) -> int:
    return sum(s.bytes_received for s in machine.kernel.sockets.values())


def _flat_drivers(machine):
    flat = []
    for entry in machine.drivers:
        flat.extend(entry if isinstance(entry, (list, tuple)) else [entry])
    return flat


def _assert_streams_intact(machine, senders) -> None:
    """Length-accounting form of §3.2 equivalence (byte-exact content is
    covered by the materialized tests below)."""
    kernel = machine.kernel
    for sender in senders:
        key = sender.conn.key.reverse()
        sock, conn = kernel.sockets[key], kernel.connections[key]
        assert sock.bytes_received == seq_diff(conn.rcv_nxt, conn.irs) - 1
        assert seq_diff(sender.conn.snd_una, sender.conn.iss) - 1 <= \
            seq_diff(conn.rcv_nxt, conn.irs) - 1


# ----------------------------------------------------------------------
# plans: validation, JSON, hashing
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = sample_plan()
        doc = json.loads(json.dumps(plan.to_json()))
        assert FaultPlan.from_json(doc) == plan

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "plan.json")
        plan = sample_plan()
        plan.dump(path)
        assert FaultPlan.load(path) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic_ray", start=0.0, duration=0.1)

    @pytest.mark.parametrize("start,duration", [(-0.1, 0.1), (0.0, 0.0), (0.0, -1.0)])
    def test_bad_window_rejected(self, start, duration):
        with pytest.raises(ValueError, match="fault window"):
            FaultSpec("corrupt", start=start, duration=duration)

    @pytest.mark.parametrize("intensity", [-0.1, 1.5])
    def test_bad_intensity_rejected(self, intensity):
        with pytest.raises(ValueError, match="intensity"):
            FaultSpec("corrupt", start=0.0, duration=0.1, intensity=intensity)

    @pytest.mark.parametrize("field,value", [("drop", 1.0), ("reorder", -0.1), ("dup", 2.0)])
    def test_bad_probability_rejected(self, field, value):
        with pytest.raises(ValueError, match="probability"):
            ImpairmentConfig(**{field: value})

    def test_horizon(self):
        assert FaultPlan().horizon == 0.0
        assert storm_plan("corrupt", 0.2, start=0.02, duration=0.05).horizon == \
            pytest.approx(0.07)

    def test_targeting(self):
        spec = FaultSpec("link_flap", start=0.0, duration=0.1, target="1")
        assert not spec.hits(0) and spec.hits(1)
        assert FaultSpec("link_flap", start=0.0, duration=0.1).hits(7)

    def test_plans_are_picklable(self):
        plan = FaultPlan(specs=[FaultSpec("corrupt", start=0.0, duration=0.1)])
        assert isinstance(plan.specs, tuple)  # list input normalized
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_any_active(self):
        assert not ImpairmentConfig().any_active
        assert ImpairmentConfig(drop=0.1).any_active
        assert ImpairmentConfig(plan=sample_plan()).any_active


# ----------------------------------------------------------------------
# every fault kind, end to end: inject -> restore -> recover
# ----------------------------------------------------------------------
_INTENSITY = {
    "loss_burst": 0.3,
    "corrupt": 0.3,
    "reorder_storm": 0.5,
    "dup_storm": 0.3,
    "ring_storm": 0.9,
    "pool_exhaust": 0.9,
    "link_flap": 1.0,
    "nic_hang": 1.0,
}


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_fault_kind_injects_restores_and_recovers(kind):
    plan = storm_plan(kind, _INTENSITY[kind], start=0.02, duration=0.02)
    sim, machine, _clients, senders = build_stream_rig(
        fast_config(), OptimizationConfig.optimized(),
        impairments=ImpairmentConfig(plan=plan),
    )
    ring_caps = [q.ring.capacity for nic in machine.nics for q in nic.queues]
    pool_cap = machine.pool.capacity

    sim.run(until=0.05)  # past the fault window
    bytes_mid = _server_bytes(machine)
    injector = machine.fault_injector
    assert injector.stats.faults_begun == 1
    assert injector.stats.faults_ended == 1
    assert injector.stats.active == 0
    assert injector.windows[0].kind == kind

    # Injected state fully restored.
    for link in machine.links:
        assert link.up
        assert link.loss_model is None
        for attr in ("drop_prob", "reorder_prob", "dup_prob", "corrupt_prob"):
            assert getattr(link, attr) == 0.0
    assert [q.ring.capacity for nic in machine.nics for q in nic.queues] == ring_caps
    assert machine.pool.capacity == pool_cap
    assert not any(nic.hung for nic in machine.nics)

    # The rig recovers: goodput resumes after the window (run past the
    # 200 ms minimum RTO so even timeout-driven recovery completes).
    sim.run(until=0.35)
    assert _server_bytes(machine) > bytes_mid
    _assert_streams_intact(machine, senders)

    # Wire-frame conservation held through the storm.
    for link in machine.links:
        st = link.stats
        assert st.frames_sent + st.frames_duplicated == \
            st.frames_delivered + st.frames_dropped + link.in_flight
        assert link.in_flight >= 0


def test_target_selects_a_single_link():
    plan = FaultPlan(specs=(
        FaultSpec("link_flap", start=0.01, duration=0.01, target="1"),
    ))
    sim, machine, _clients, _senders = build_stream_rig(
        fast_config(), OptimizationConfig.optimized(),
        impairments=ImpairmentConfig(plan=plan),
    )
    sim.run(until=0.015)
    assert machine.links[0].up
    assert not machine.links[1].up
    sim.run(until=0.03)
    assert machine.links[1].up
    assert machine.links[1].stats.frames_dropped_link_down > 0
    assert machine.links[0].stats.frames_dropped_link_down == 0


def test_arm_is_idempotent():
    plan = storm_plan("corrupt", 0.2, start=0.01, duration=0.01)
    sim, machine, _clients, _senders = build_stream_rig(
        fast_config(), OptimizationConfig.optimized(),
        impairments=ImpairmentConfig(plan=plan),
    )
    machine.fault_injector.arm()  # second arm must not double-schedule
    sim.run(until=0.03)
    assert machine.fault_injector.stats.faults_begun == 1
    assert machine.fault_injector.stats.faults_ended == 1


# ----------------------------------------------------------------------
# driver watchdog: hung NIC detected, reset conserves every packet
# ----------------------------------------------------------------------
def test_watchdog_reset_recovers_hung_nic_without_leaking():
    plan = storm_plan("nic_hang", 1.0, start=0.02, duration=0.02)
    sim, machine, _clients, senders = build_stream_rig(
        fast_config(), OptimizationConfig.optimized(),
        impairments=ImpairmentConfig(plan=plan),
    )
    sim.run(until=0.35)

    drivers = _flat_drivers(machine)
    assert sum(d.stats.resets for d in drivers) >= 1
    assert all(d.stats.watchdog_ticks > 0 for d in drivers)
    assert not any(nic.hung for nic in machine.nics)
    for driver in drivers:
        ring = driver.queue.ring
        # Ring conservation: nothing materialized, nothing vanished.
        assert ring.posted == ring.drained + len(ring)
        # Reset conservation: every drained descriptor was either handed to
        # the stack or flushed by the reset — never both, never neither.
        assert ring.drained == driver.stats.rx_packets + driver.stats.rx_dropped_reset

    # And the connections came back.
    assert _server_bytes(machine) > 0
    _assert_streams_intact(machine, senders)


# ----------------------------------------------------------------------
# degradation governor: hysteresis unit behavior
# ----------------------------------------------------------------------
class TestCoalesceGovernor:
    def test_validation(self):
        with pytest.raises(ValueError, match="hysteresis"):
            CoalesceGovernor(enter_threshold=0.1, exit_threshold=0.2)
        with pytest.raises(ValueError, match="alpha"):
            CoalesceGovernor(alpha=0.0)

    def test_enters_only_after_warmup(self):
        gov = CoalesceGovernor()
        now = 0.0
        for _ in range(gov.min_packets - 1):
            now += 1e-5
            assert not gov.observe(True, now)  # rate high, warmup gate holds
        assert gov.rate > gov.enter_threshold
        assert gov.stats.enters == 0
        now += 1e-5
        assert gov.observe(True, now)  # warmup satisfied -> degrade
        assert gov.degraded
        assert gov.stats.enters == 1

    def test_exit_requires_low_rate_and_quiet_period(self):
        gov = CoalesceGovernor()
        now = 0.0
        for _ in range(gov.min_packets):
            now += 1e-5
            gov.observe(True, now)
        assert gov.degraded
        last_disorder = now
        # Clean packets arrive fast: the EWMA decays below exit_threshold
        # long before quiet_period_s elapses -> must stay degraded.
        while gov.rate >= gov.exit_threshold:
            now += 1e-5
            assert gov.observe(False, now)
        assert now - last_disorder < gov.quiet_period_s
        # Still inside the quiet window: no exit.
        assert gov.observe(False, last_disorder + gov.quiet_period_s - 1e-6)
        # Quiet period over AND rate low: restore.
        assert not gov.observe(False, last_disorder + gov.quiet_period_s + 1e-6)
        assert not gov.degraded
        assert gov.stats.exits == 1

    def test_no_flapping_inside_a_storm(self):
        """Alternating disorder holds the EWMA between the thresholds:
        exactly one enter, zero exits — the hysteresis gap absorbs it."""
        gov = CoalesceGovernor()
        now = 0.0
        for i in range(2000):
            now += 1e-5
            gov.observe(i % 2 == 0, now)
        assert gov.stats.enters == 1
        assert gov.stats.exits == 0
        assert gov.degraded

    def test_reenters_on_second_storm(self):
        gov = CoalesceGovernor()
        now = 0.0
        for _ in range(gov.min_packets):
            now += 1e-5
            gov.observe(True, now)
        while gov.degraded:
            now += 5e-4
            gov.observe(False, now)
        for _ in range(2 * gov.min_packets):
            now += 1e-5
            gov.observe(True, now)
        assert gov.stats.enters == 2
        assert gov.stats.exits == 1
        assert gov.degraded


# ----------------------------------------------------------------------
# acceptance criterion: degradation demonstrably helps, clean wire unchanged
# ----------------------------------------------------------------------
def test_degradation_beats_forced_coalescing_under_lro_reorder():
    """Hardware LRO under a sustained reorder storm is the Wu et al.
    pathology: sessions park in-flight packets, so every out-of-order
    arrival becomes a burst plus late dupACKs.  The governor's auto-disable
    must win over coalescing forced on (measured margin is ~6x; assert a
    conservative 1.5x so the test stays robust to cost-model tuning)."""
    config = dataclasses.replace(linux_up_config(), nic_lro=True, name="Linux UP/LRO")
    imp = ImpairmentConfig(reorder=0.2, seed=971)
    opt = run_stream_experiment(
        config, OptimizationConfig.optimized(),
        duration=0.05, warmup=0.05, impairments=imp,
    )
    resil = run_stream_experiment(
        config, OptimizationConfig.resilient(),
        duration=0.05, warmup=0.05, impairments=imp,
    )
    assert resil.throughput_mbps >= 1.5 * opt.throughput_mbps


@pytest.mark.parametrize("lro", [False, True], ids=["softagg", "hw-lro"])
def test_clean_wire_resilient_is_bit_identical_to_optimized(lro):
    """With no storm the governor never trips: the resilient build must be
    indistinguishable from the optimized one — same events, same bytes."""
    config = fast_config()
    if lro:
        config = dataclasses.replace(config, nic_lro=True)
    opt = run_stream_experiment(
        config, OptimizationConfig.optimized(), duration=0.03, warmup=0.02)
    resil = run_stream_experiment(
        config, OptimizationConfig.resilient(), duration=0.03, warmup=0.02)
    assert resil.events_fired == opt.events_fired
    assert resil.throughput_mbps == opt.throughput_mbps
    assert resil.bytes_received == opt.bytes_received


# ----------------------------------------------------------------------
# byte-exact stream content through a storm (materialized payloads)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind,intensity", [("corrupt", 0.3), ("loss_burst", 0.3)])
def test_delivered_bytes_equal_sent_bytes_through_storm(kind, intensity):
    plan = storm_plan(kind, intensity, start=0.005, duration=0.01)
    sim, machine, _clients, senders = build_stream_rig(
        fast_config(), OptimizationConfig.optimized(),
        impairments=ImpairmentConfig(plan=plan), materialize=True,
    )
    received = {}

    def on_accept(sock):
        chunks = received.setdefault(sock.conn.key, [])
        sock.on_data_cb = lambda _s, payload, _n: chunks.append(payload)

    machine.listen(SERVER_PORT, on_accept=on_accept)  # install collectors
    sim.run(until=0.04)

    for j, sender in enumerate(senders):
        key = sender.conn.key.reverse()
        got = b"".join(received[key])
        sock = machine.kernel.sockets[key]
        assert len(got) == sock.bytes_received > 0
        # Source j sends pattern(seed=j); the delivered prefix must match
        # byte for byte — no corruption leaked past the checksum, no
        # retransmit delivered twice.
        assert got == InfiniteSource.pattern(0, len(got), seed=j)


# ----------------------------------------------------------------------
# determinism: an armed plan replays bit-identically
# ----------------------------------------------------------------------
def test_armed_plan_replays_bit_identically():
    def one_run():
        imp = ImpairmentConfig(drop=0.01, reorder=0.02, dup=0.01, plan=sample_plan())
        sim, machine, _clients, senders = build_stream_rig(
            fast_config(), OptimizationConfig.optimized(), impairments=imp)
        sim.run(until=0.18)
        link = machine.links[0].stats
        return (
            sim.events_fired,
            _server_bytes(machine),
            sum(s.conn.stats.retransmits for s in senders),
            link.frames_sent, link.frames_dropped, link.frames_corrupted,
            link.frames_reordered, link.frames_duplicated,
            link.frames_dropped_burst, link.frames_dropped_link_down,
        )

    assert one_run() == one_run()


# ----------------------------------------------------------------------
# plumbing: experiments that cannot honor impairments reject them
# ----------------------------------------------------------------------
def test_experiments_without_impairment_support_reject_loudly():
    from repro.experiments.runner import run_experiment

    with pytest.raises(ValueError, match="does not take wire impairments"):
        run_experiment("figure3", quick=True,
                       impairments=ImpairmentConfig(drop=0.01))


# ----------------------------------------------------------------------
# plan validation: semantic lint + the `repro.faults validate` CLI
# ----------------------------------------------------------------------
class TestPlanValidation:
    def test_sample_plan_is_clean(self):
        from repro.faults.plan import validate_plan

        assert validate_plan(sample_plan()) == []

    def test_empty_plan_flagged(self):
        from repro.faults.plan import validate_plan

        assert any("no fault windows" in p for p in validate_plan(FaultPlan()))

    def test_overlapping_same_kind_windows_flagged(self):
        from repro.faults.plan import validate_plan

        plan = FaultPlan(specs=(
            FaultSpec("corrupt", start=0.00, duration=0.10),
            FaultSpec("corrupt", start=0.05, duration=0.10),
        ))
        assert any("overlapping" in p for p in validate_plan(plan))

    def test_overlapping_different_targets_ok(self):
        from repro.faults.plan import validate_plan

        plan = FaultPlan(specs=(
            FaultSpec("corrupt", start=0.00, duration=0.10, target="0"),
            FaultSpec("corrupt", start=0.05, duration=0.10, target="1"),
        ))
        assert validate_plan(plan) == []

    def test_bad_target_flagged(self):
        from repro.faults.plan import validate_plan

        plan = FaultPlan(specs=(
            FaultSpec("link_flap", start=0.0, duration=0.1, target="eth0"),
        ))
        assert any("target" in p for p in validate_plan(plan))

    def test_noop_intensity_flagged(self):
        from repro.faults.plan import validate_plan

        plan = FaultPlan(specs=(
            FaultSpec("corrupt", start=0.0, duration=0.1, intensity=0.0),
        ))
        assert any("inject nothing" in p for p in validate_plan(plan))

    def test_load_plan_file_names_offending_entry(self, tmp_path):
        from repro.faults.plan import PlanFileError, load_plan_file

        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"faults": [
            {"kind": "corrupt", "start": 0.0, "duration": 0.1},
            {"kind": "cosmic_ray", "start": 0.0, "duration": 0.1},
        ]}))
        with pytest.raises(PlanFileError, match="fault #1"):
            load_plan_file(str(path))
        path.write_text("{not json")
        with pytest.raises(PlanFileError, match="not valid JSON"):
            load_plan_file(str(path))
        path.write_text(json.dumps({"faults": [{"kind": "corrupt"}]}))
        with pytest.raises(PlanFileError, match="missing start, duration"):
            load_plan_file(str(path))

    def test_validate_cli_exit_codes(self, tmp_path):
        from repro.faults.__main__ import main

        clean = tmp_path / "clean.json"
        sample_plan().dump(str(clean))
        assert main(["validate", str(clean)]) == 0

        problems = tmp_path / "problems.json"
        problems.write_text('{"faults": []}')
        assert main(["validate", str(problems)]) == 1

        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert main(["validate", str(broken)]) == 2

    def test_checked_in_sample_plan_is_clean(self):
        from repro.faults.plan import load_plan_file, validate_plan

        plan = load_plan_file("examples/fault_plan.json")
        assert plan == sample_plan()
        assert validate_plan(plan) == []


# ----------------------------------------------------------------------
# three-mode governor: coalesce -> sort-and-coalesce -> disable
# ----------------------------------------------------------------------
class TestThreeModeGovernor:
    def test_threshold_ordering_validated(self):
        with pytest.raises(ValueError, match="sort-tier hysteresis"):
            CoalesceGovernor(disable_threshold=0.2)  # below enter_threshold

    def test_full_transition_cycle(self):
        from repro.faults.degradation import (
            MODE_COALESCE,
            MODE_DISABLE,
            MODE_SORT,
        )

        gov = CoalesceGovernor(min_packets=1)
        gov.enable_sort()
        now = 0.0
        # Storm begins: first tier is the sort stage, not disable.
        while gov.mode == MODE_COALESCE:
            now += 1e-5
            gov.observe(True, now)
        assert gov.mode == MODE_SORT and not gov.degraded
        assert gov.stats.sort_enters == 1 and gov.stats.enters == 0
        # Disorder keeps saturating: sorting can't help, fall back.
        while gov.mode == MODE_SORT:
            now += 1e-5
            gov.observe(True, now)
        assert gov.mode == MODE_DISABLE and gov.degraded
        assert gov.stats.enters == 1
        # Calms below disable_exit (plus dwell): resume sorting.
        while gov.mode == MODE_DISABLE:
            now += 1e-4
            gov.observe(False, now)
        assert gov.mode == MODE_SORT and not gov.degraded
        assert gov.stats.exits == 1
        # Fully quiet: back to plain coalescing.
        while gov.mode == MODE_SORT:
            now += 1e-3
            gov.observe(False, now)
        assert gov.mode == MODE_COALESCE
        assert gov.stats.sort_exits == 1
        assert gov.stats.mode_transitions == 4

    def test_two_mode_policy_counters_cross_both_boundaries(self):
        gov = CoalesceGovernor(min_packets=1)  # no enable_sort: two-mode
        now = 0.0
        while not gov.degraded:
            now += 1e-5
            gov.observe(True, now)
        assert gov.mode == 2
        assert gov.stats.enters == 1 and gov.stats.sort_enters == 1
        assert gov.stats.mode_transitions == 1


# ----------------------------------------------------------------------
# reorder-repair buffer: unit behavior of every release rule
# ----------------------------------------------------------------------
class TestReorderRepairBuffer:
    def _rig(self, depth=4, hold_window_s=1e-3):
        from repro.core.config import RepairConfig
        from repro.cpu.cpu import Cpu
        from repro.faults.degradation import MODE_SORT
        from repro.faults.repair import ReorderRepairBuffer
        from repro.sim.engine import Simulator

        cfg = linux_up_config()
        sim = Simulator()
        cpu = Cpu(sim, cfg.cpu_freq_hz, costs=cfg.costs, name="repair-cpu")
        governor = CoalesceGovernor()
        released = []
        repair = ReorderRepairBuffer(
            cpu=cpu,
            config=RepairConfig(depth=depth, hold_window_s=hold_window_s),
            governor=governor,
            sink=lambda pkts: released.extend(pkts),
            name="unit-repair",
        )
        # Pin the governor mid-sort: rate well inside the hysteresis band so
        # a handful of clean observes can't transition it out.
        governor.mode = MODE_SORT
        governor.rate = 0.5
        return sim, cpu, repair, governor, released

    @staticmethod
    def _seg(seq, payload_len=100, flags=None):
        from repro.net.packet import make_data_segment
        from repro.net.tcp_header import TcpFlags

        pkt = make_data_segment(
            src_ip=0x0A000002, dst_ip=0x0A000001,
            src_port=40000, dst_port=SERVER_PORT,
            seq=seq, ack=1, payload_len=payload_len,
            flags=flags if flags is not None else TcpFlags.ACK,
        )
        pkt.csum_verified = True
        return pkt

    def test_in_order_frames_pass_through_unheld(self):
        sim, _cpu, repair, _gov, _released = self._rig()
        out = repair.process([self._seg(0), self._seg(100)], sim.now)
        assert [p.tcp.seq for p in out] == [0, 100]
        assert repair.occupancy == 0 and repair.stats.holds == 0
        assert repair.stats.frames_in == repair.stats.frames_out == 2

    def test_gap_fill_releases_held_run_in_sequence(self):
        sim, _cpu, repair, _gov, _released = self._rig()
        assert [p.tcp.seq for p in repair.process([self._seg(0)], sim.now)] == [0]
        # Two future frames arrive scrambled while seq 100 is missing.
        assert repair.process([self._seg(300)], sim.now) == []
        assert repair.process([self._seg(200)], sim.now) == []
        assert repair.occupancy == 2
        out = repair.process([self._seg(100)], sim.now)
        assert [p.tcp.seq for p in out] == [100, 200, 300]
        assert repair.stats.releases_in_order == 2
        assert repair.occupancy == 0
        assert repair.stats.frames_in == repair.stats.frames_out == 4

    def test_repair_work_is_charged_to_the_repair_category(self):
        from repro.cpu.categories import Category

        sim, cpu, repair, _gov, _released = self._rig()
        repair.process([self._seg(0)], sim.now)
        repair.process([self._seg(200)], sim.now)  # held
        repair.process([self._seg(100)], sim.now)  # gap fill + release
        assert cpu.profiler.cycles[Category.REPAIR] > 0

    def test_overflow_drains_whole_run_in_sequence(self):
        sim, _cpu, repair, _gov, _released = self._rig(depth=2)
        repair.process([self._seg(0)], sim.now)
        assert repair.process([self._seg(400), self._seg(300)], sim.now) == []
        # Third hold exceeds depth=2: the gap is declared lost, the whole
        # run releases in sequence order.
        out = repair.process([self._seg(200)], sim.now)
        assert [p.tcp.seq for p in out] == [200, 300, 400]
        assert repair.stats.releases_overflow == 3
        assert repair.occupancy == 0
        # The run's end was adopted: the next contiguous frame passes.
        assert [p.tcp.seq for p in repair.process([self._seg(500)], sim.now)] == [500]

    def test_deadline_releases_parked_frames_through_the_sink(self):
        sim, _cpu, repair, _gov, released = self._rig(hold_window_s=1e-4)
        repair.process([self._seg(0)], sim.now)
        assert repair.process([self._seg(200)], sim.now) == []
        assert repair.occupancy == 1
        sim.run(until=0.01)  # the hold window matures on the timer
        assert [p.tcp.seq for p in released] == [200]
        assert repair.stats.deadline_fires == 1
        assert repair.stats.releases_deadline == 1
        assert repair.occupancy == 0
        assert repair.stats.frames_in == repair.stats.frames_out == 2
        assert repair.stats.max_hold_ns >= int(1e-4 * 1e9)

    def test_gap_fill_cancels_the_deadline(self):
        sim, _cpu, repair, _gov, released = self._rig(hold_window_s=1e-4)
        repair.process([self._seg(0)], sim.now)
        repair.process([self._seg(200)], sim.now)
        repair.process([self._seg(100)], sim.now)  # fills the gap
        sim.run(until=0.01)  # matured timer must be a stale-episode no-op
        assert released == []
        assert repair.stats.deadline_fires == 0
        assert repair.stats.releases_deadline == 0

    def test_control_frame_flushes_held_data_ahead_of_itself(self):
        from repro.net.tcp_header import TcpFlags

        sim, _cpu, repair, _gov, _released = self._rig()
        repair.process([self._seg(0)], sim.now)
        repair.process([self._seg(200)], sim.now)
        fin = self._seg(100, flags=TcpFlags.ACK | TcpFlags.FIN)
        out = repair.process([fin], sim.now)
        # Held data first (ordering), then the control frame.
        assert [p.tcp.seq for p in out] == [200, 100]
        assert repair.stats.releases_flush == 1
        assert repair.occupancy == 0

    def test_pure_ack_flushes_and_passes(self):
        sim, _cpu, repair, _gov, _released = self._rig()
        repair.process([self._seg(0)], sim.now)
        repair.process([self._seg(200)], sim.now)
        out = repair.process([self._seg(100, payload_len=0)], sim.now)
        assert [p.tcp.seq for p in out] == [200, 100]
        assert repair.stats.releases_flush == 1

    def test_old_duplicate_passes_without_holding(self):
        sim, _cpu, repair, _gov, _released = self._rig()
        repair.process([self._seg(0), self._seg(100)], sim.now)
        out = repair.process([self._seg(0)], sim.now)  # retransmit overlap
        assert [p.tcp.seq for p in out] == [0]
        assert repair.occupancy == 0 and repair.stats.holds == 0

    def test_duplicate_of_held_frame_passes_without_double_parking(self):
        """An RTO retransmit of a frame already parked behind the gap must
        pass through, not occupy a second slot: the buffer holds at most
        one copy of any segment (strictly increasing sequence order is a
        sanitizer invariant), and releasing two copies of the same bytes
        from one buffer would be a conservation lie."""
        sim, _cpu, repair, _gov, _released = self._rig()
        repair.process([self._seg(0)], sim.now)          # release point at 100
        repair.process([self._seg(300)], sim.now)        # parked behind the gap
        assert repair.occupancy == 1
        out = repair.process([self._seg(300)], sim.now)  # RTO fires: same frame again
        assert [p.tcp.seq for p in out] == [300]         # dup passes, original stays
        assert repair.occupancy == 1 and repair.stats.holds == 1
        # The gap fill releases the single parked copy exactly once.
        out = repair.process([self._seg(100), self._seg(200)], sim.now)
        assert [p.tcp.seq for p in out] == [100, 200, 300]
        assert repair.occupancy == 0
        assert repair.stats.frames_in == repair.stats.frames_out == 5

    def test_mode_change_flushes_parked_frames(self):
        from repro.faults.degradation import MODE_COALESCE

        sim, _cpu, repair, gov, _released = self._rig()
        repair.process([self._seg(0)], sim.now)
        repair.process([self._seg(200)], sim.now)
        gov.mode = MODE_COALESCE  # e.g. another queue's signal on a shared governor
        out = repair.process([self._seg(300)], sim.now)
        assert [p.tcp.seq for p in out] == [200, 300]
        assert repair.occupancy == 0

    def test_flush_returns_everything_for_driver_reset(self):
        sim, _cpu, repair, _gov, _released = self._rig()
        repair.process([self._seg(0)], sim.now)
        repair.process([self._seg(300), self._seg(200)], sim.now)
        out = repair.flush()
        assert [p.tcp.seq for p in out] == [200, 300]
        assert repair.occupancy == 0
        assert repair.stats.frames_in == repair.stats.frames_out == 3


# ----------------------------------------------------------------------
# sort-and-coalesce end to end: exact bytes through every fault kind
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_repair_delivers_exact_bytes_through_every_fault_kind(kind):
    """§3.2 equivalence with the repair stage in the path: whatever the
    storm, every byte the application sees is the byte the sender sent —
    no duplicate, scrambled, or corrupted delivery."""
    plan = storm_plan(kind, _INTENSITY[kind], start=0.005, duration=0.01)
    sim, machine, _clients, senders = build_stream_rig(
        fast_config(), OptimizationConfig.resilient(repair=True),
        impairments=ImpairmentConfig(plan=plan), materialize=True,
    )
    received = {}

    def on_accept(sock):
        chunks = received.setdefault(sock.conn.key, [])
        sock.on_data_cb = lambda _s, payload, _n: chunks.append(payload)

    machine.listen(SERVER_PORT, on_accept=on_accept)
    sim.run(until=0.1)

    for j, sender in enumerate(senders):
        key = sender.conn.key.reverse()
        got = b"".join(received[key])
        sock = machine.kernel.sockets[key]
        assert len(got) == sock.bytes_received > 0
        assert got == InfiniteSource.pattern(0, len(got), seed=j)
    _assert_streams_intact(machine, senders)
    # Repair conservation held end to end.
    for repair in machine.repairs:
        assert repair.stats.frames_in == repair.stats.frames_out + repair.occupancy


def test_armed_plan_with_repair_replays_bit_identically():
    def one_run():
        imp = ImpairmentConfig(drop=0.01, reorder=0.02, dup=0.01, plan=sample_plan())
        sim, machine, _clients, senders = build_stream_rig(
            fast_config(), OptimizationConfig.resilient(repair=True),
            impairments=imp,
        )
        sim.run(until=0.18)
        stats = machine.repairs[0].stats
        return (
            sim.events_fired,
            _server_bytes(machine),
            sum(s.conn.stats.retransmits for s in senders),
            stats.frames_in, stats.frames_out, stats.holds,
            stats.releases_in_order, stats.releases_deadline,
            stats.releases_overflow, stats.releases_flush,
            stats.deadline_fires, stats.max_hold_ns,
            machine.governor.stats.mode_transitions,
        )

    assert one_run() == one_run()


@pytest.mark.parametrize("lro", [False, True], ids=["softagg", "hw-lro"])
def test_clean_wire_repair_is_bit_identical_to_optimized(lro):
    """With no storm the repair stage is a free observe-only pass-through:
    the sort-and-coalesce build must be indistinguishable from the
    optimized one — same events, same bytes."""
    config = fast_config()
    if lro:
        config = dataclasses.replace(config, nic_lro=True)
    opt = run_stream_experiment(
        config, OptimizationConfig.optimized(), duration=0.03, warmup=0.02)
    rep = run_stream_experiment(
        config, OptimizationConfig.resilient(repair=True),
        duration=0.03, warmup=0.02)
    assert rep.events_fired == opt.events_fired
    assert rep.throughput_mbps == opt.throughput_mbps
    assert rep.bytes_received == opt.bytes_received


def test_sort_and_coalesce_beats_auto_disable_under_reorder_storm():
    """The tentpole claim: under the LRO reorder pathology, sorting frames
    back into sequence inside the coalescing window beats switching
    coalescing off (measured margin is ~3x; assert a conservative 1.8x)."""
    config = dataclasses.replace(linux_up_config(), nic_lro=True, name="Linux UP/LRO")
    imp = ImpairmentConfig(reorder=0.3, seed=971)
    disable = run_stream_experiment(
        config, OptimizationConfig.resilient(),
        duration=0.05, warmup=0.05, impairments=imp,
    )
    sort = run_stream_experiment(
        config, OptimizationConfig.resilient(repair=True),
        duration=0.05, warmup=0.05, impairments=imp,
    )
    assert sort.throughput_mbps >= 1.8 * disable.throughput_mbps
