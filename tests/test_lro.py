"""Hardware-LRO comparator tests (related work, paper §6)."""

import dataclasses

import pytest

from repro.core.config import OptimizationConfig
from repro.net.addresses import ip_from_str
from repro.net.packet import make_data_segment
from repro.net.tcp_header import TcpFlags
from repro.nic.lro import LroEngine

from tests.conftest import fast_config

CLIENT = ip_from_str("10.0.1.1")
CLIENT2 = ip_from_str("10.0.1.2")
SERVER = ip_from_str("10.0.0.1")
MSS = 1448


def seg(seq, ack=0, length=MSS, src_ip=CLIENT, ts=(5, 0), flags=TcpFlags.ACK | TcpFlags.PSH,
        payload=None):
    pkt = make_data_segment(src_ip, SERVER, 10000, 5001, seq=seq, ack=ack,
                            payload_len=length, payload=payload, timestamp=ts, flags=flags)
    pkt.csum_verified = True
    return pkt


def test_in_sequence_segments_merge():
    lro = LroEngine(limit=20)
    for i in range(5):
        assert lro.accept(seg(1000 + i * MSS)) == []
    out = lro.flush()
    assert len(out) == 1
    merged = out[0]
    assert merged.lro_segs == 5
    assert merged.payload_len == 5 * MSS
    assert merged.tcp.seq == 1000
    assert merged.ip.checksum_ok()


def test_merge_takes_last_ack_window_timestamp():
    lro = LroEngine()
    first = seg(1000, ack=10, ts=(5, 1))
    last = seg(1000 + MSS, ack=20, ts=(6, 2))
    last.tcp.window = 777
    lro.accept(first)
    lro.accept(last)
    merged = lro.flush()[0]
    assert merged.tcp.ack == 20
    assert merged.tcp.window == 777
    assert merged.tcp.options.timestamp == (6, 2)


def test_limit_closes_session():
    lro = LroEngine(limit=3)
    out = []
    for i in range(7):
        out += lro.accept(seg(1000 + i * MSS))
    out += lro.flush()
    assert [p.lro_segs for p in out] == [3, 3, 1]


def test_gap_closes_and_restarts():
    lro = LroEngine()
    lro.accept(seg(1000))
    out = lro.accept(seg(1000 + 5 * MSS))  # hole
    assert len(out) == 1 and out[0].lro_segs == 1
    assert lro.flush()[0].tcp.seq == 1000 + 5 * MSS


def test_non_mergeable_passthrough_closes_flow_session():
    lro = LroEngine()
    lro.accept(seg(1000))
    fin = seg(1000 + MSS, flags=TcpFlags.ACK | TcpFlags.FIN)
    out = lro.accept(fin)
    # Session closed first (ordering), then the FIN passes through unmerged.
    assert [p.tcp.seq for p in out] == [1000, 1000 + MSS]
    assert out[0].lro_segs == 1
    assert TcpFlags.FIN in out[1].tcp.flags


def test_pure_ack_not_merged():
    lro = LroEngine()
    out = lro.accept(seg(1000, length=0, flags=TcpFlags.ACK))
    assert len(out) == 1
    assert lro.flush() == []


def test_flows_kept_separate():
    lro = LroEngine()
    lro.accept(seg(1000, src_ip=CLIENT))
    lro.accept(seg(5000, src_ip=CLIENT2))
    out = lro.flush()
    assert len(out) == 2
    assert {p.ip.src_ip for p in out} == {CLIENT, CLIENT2}


def test_payload_bytes_joined():
    lro = LroEngine()
    lro.accept(seg(1000, payload=b"aa", length=2))
    lro.accept(seg(1002, payload=b"bbb", length=3))
    merged = lro.flush()[0]
    assert merged.payload == b"aabbb"
    assert merged.payload_len == 5


def test_invalid_limit_rejected():
    with pytest.raises(ValueError):
        LroEngine(limit=0)


def test_end_to_end_lro_machine_integrity():
    """Full transfer through a hardware-LRO NIC, byte-exact delivery."""
    from repro.host.client import ClientHost
    from repro.host.machine import ReceiverMachine
    from repro.sim.engine import Simulator
    from repro.tcp.connection import TcpConfig
    from repro.tcp.source import InfiniteSource

    sim = Simulator()
    cfg = dataclasses.replace(fast_config(n_nics=1), nic_lro=True)
    machine = ReceiverMachine(sim, cfg, OptimizationConfig.baseline(), ip=SERVER)
    machine.listen(5001)
    client = ClientHost(sim, CLIENT)
    machine.add_client(client)
    sock = client.connect(SERVER, 5001, config=TcpConfig(materialize_payload=True))
    sock.conn.attach_source(InfiniteSource(materialize=True, seed=6, limit_bytes=200_000))
    sim.run(until=5.0)
    server_sock = next(iter(machine.kernel.sockets.values()))
    assert server_sock.bytes_received == 200_000
    # The host saw far fewer packets than the wire carried.
    assert machine.profiler.network_packets > machine.drivers[0].stats.rx_packets
    machine.pool.assert_balanced()


def test_lro_cheaper_than_software_but_fewer_acks():
    """§6 comparison: LRO saves more CPU but thins the ACK stream."""
    from repro.experiments import run_experiment

    result = run_experiment("extension_hw_lro", quick=True)
    rows = {row["stack"]: row for row in result.rows}
    assert rows["Hardware LRO"]["cycles/packet"] < rows["Software RA+AO"]["cycles/packet"]
    assert rows["Software RA+AO"]["cycles/packet"] < rows["Baseline"]["cycles/packet"]
    assert rows["Hardware LRO"]["acks/1000 pkts"] < 0.5 * rows["Software RA+AO"]["acks/1000 pkts"]
    # Software captures "much of the benefit" (>= half the CPU saving).
    saving_sw = rows["Baseline"]["cycles/packet"] - rows["Software RA+AO"]["cycles/packet"]
    saving_hw = rows["Baseline"]["cycles/packet"] - rows["Hardware LRO"]["cycles/packet"]
    assert saving_sw > 0.5 * saving_hw
