"""Memory hierarchy, NUMA topology, and zero-copy receive path."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.sanitizer import InvariantViolation, install, uninstall
from repro.core.config import OptimizationConfig
from repro.cpu.costmodel import CostModel
from repro.host.configs import linux_smp_config, linux_up_config
from repro.host.machine import ReceiverMachine
from repro.host.client import ClientHost
from repro.mem.hierarchy import MemConfig, MemoryHierarchy
from repro.mem.topology import NumaTopology
from repro.mem.zerocopy import zcrx_item_cycles
from repro.net.addresses import ip_from_str
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.tcp.connection import TcpConfig
from repro.tcp.source import InfiniteSource
from repro.workloads.stream import run_stream_experiment

SERVER = ip_from_str("10.0.0.1")


def mem_config(**overrides) -> MemConfig:
    return MemConfig(**overrides)


class FakePacket:
    """Duck-types the three fields the hierarchy reads off a Packet."""

    def __init__(self, wire_len=1500, payload_len=1448):
        self.wire_len = wire_len
        self.payload_len = payload_len
        self.mem_token = None
        self.payload = None
        self._slab_free = False


def make_packet(wire_len=1500, payload_len=1448):
    return FakePacket(wire_len, payload_len)


class FakeSkb:
    def __init__(self, pkts):
        self.head = pkts[0]
        self.frags = list(pkts[1:])


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
class TestTopology:
    def test_single_node_maps_everything_to_zero(self):
        topo = NumaTopology(nodes=1, cpus=4, queues=4)
        assert [topo.node_of_cpu(i) for i in range(4)] == [0, 0, 0, 0]
        assert [topo.node_of_queue(i) for i in range(4)] == [0, 0, 0, 0]

    def test_block_split_two_nodes_four_cpus(self):
        topo = NumaTopology(nodes=2, cpus=4, queues=4)
        assert [topo.node_of_cpu(i) for i in range(4)] == [0, 0, 1, 1]
        assert topo.cpus_of_node(0) == [0, 1]
        assert topo.cpus_of_node(1) == [2, 3]
        assert topo.queues_of_node(1) == [2, 3]

    def test_more_nodes_than_cpus_clamps(self):
        topo = NumaTopology(nodes=4, cpus=2)
        assert [topo.node_of_cpu(i) for i in range(2)] == [0, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            NumaTopology(nodes=0, cpus=1)
        with pytest.raises(ValueError):
            NumaTopology(nodes=1, cpus=0)


# ----------------------------------------------------------------------
# hierarchy: DDIO placement / eviction / consumption
# ----------------------------------------------------------------------
class TestHierarchy:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(mem_config(nodes=0))
        with pytest.raises(ValueError):
            MemoryHierarchy(mem_config(ddio_ways=0))
        with pytest.raises(ValueError):
            MemoryHierarchy(mem_config(ddio_ways=16, n_ways=16))

    def test_io_capacity_geometry(self):
        cfg = mem_config()
        # 2 MiB, 16-way, 2 I/O ways, 64 B lines -> 4096 lines.
        assert cfg.io_capacity_lines == 4096
        assert cfg.app_llc_bytes == (2 * 1024 * 1024 * 14) // 16

    def test_place_then_consume_conserves_occupancy(self):
        mem = MemoryHierarchy(mem_config())
        node = mem.nodes[0]
        pkts = [make_packet() for _ in range(5)]
        for pkt in pkts:
            mem.dma_place(pkt, 0)
        lines = mem.lines_of(1500)
        assert node.io_occupancy == 5 * lines
        assert node.ddio_placements == 5
        info = mem.consume_skb(FakeSkb(pkts), consumer_node=0)
        assert node.io_occupancy == 0
        # Payload lines are warm; wire overhead lines stay counted as
        # placed but only payload classifies.
        assert info == (5 * mem.lines_of(1448), 0, 0, 0)
        assert node.llc_hits == 5 * mem.lines_of(1448)
        assert mem.dram_line_fetches == 0

    def test_fifo_eviction_is_deterministic_and_counted(self):
        # Tiny I/O ways: capacity 2048 bytes / 64 = 32 lines.
        mem = MemoryHierarchy(
            mem_config(llc_bytes=16 * 1024, n_ways=16, ddio_ways=2)
        )
        node = mem.nodes[0]
        assert node.io_capacity_lines == 32
        first = make_packet(wire_len=30 * 64)
        mem.dma_place(first, 0)
        assert node.io_occupancy == 30
        second = make_packet(wire_len=10 * 64)
        mem.dma_place(second, 0)  # 30 + 10 > 32 -> first evicted
        assert node.io_occupancy == 10
        assert node.io_evictions == 1
        assert node.evicted_lines == 30
        # The evicted token's lines read cold at consume time.
        info = mem.consume_skb(
            FakeSkb([first]), consumer_node=0
        )
        assert info == (0, 0, mem.lines_of(first.payload_len), 0)
        assert mem.dram_line_fetches == mem.lines_of(first.payload_len)

    def test_oversized_frame_clamps_to_capacity(self):
        mem = MemoryHierarchy(mem_config(llc_bytes=16 * 1024))
        huge = make_packet(wire_len=100 * 64)
        mem.dma_place(huge, 0)
        assert mem.nodes[0].io_occupancy == 32

    def test_determinism_identical_sequences(self):
        def run():
            mem = MemoryHierarchy(mem_config(llc_bytes=64 * 1024))
            pkts = [make_packet(wire_len=1500 + 64 * (i % 7)) for i in range(200)]
            for i, pkt in enumerate(pkts):
                mem.dma_place(pkt, 0)
                if i % 3 == 0:
                    mem.consume_skb(FakeSkb([pkt]), consumer_node=0)
            node = mem.nodes[0]
            return (
                node.io_occupancy,
                node.io_evictions,
                node.evicted_lines,
                node.llc_hits,
                mem.dram_line_fetches,
            )

        assert run() == run()


# ----------------------------------------------------------------------
# NUMA charge accounting
# ----------------------------------------------------------------------
class TestNumaAccounting:
    def test_remote_consume_classifies_and_counts(self):
        mem = MemoryHierarchy(mem_config(nodes=2))
        pkt = make_packet()
        mem.dma_place(pkt, 0)
        info = mem.consume_skb(FakeSkb([pkt]), consumer_node=1)
        plines = mem.lines_of(1448)
        assert info == (0, plines, 0, 0)
        assert mem.remote_line_fetches == plines
        # Warm lines came from the remote LLC, not DRAM.
        assert mem.dram_line_fetches == 0

    def test_remote_copy_costs_more_than_local(self):
        mem = MemoryHierarchy(mem_config(nodes=2))
        plines = mem.lines_of(1448)
        local = mem.copy_cycles(1448, (plines, 0, 0, 0), 0.75)
        remote = mem.copy_cycles(1448, (0, plines, 0, 0), 0.75)
        cold_remote = mem.copy_cycles(1448, (0, 0, 0, plines), 0.75)
        assert local < remote < cold_remote
        expected_delta = plines * (90.0 - 30.0)
        assert remote - local == pytest.approx(expected_delta)

    def test_warm_local_copy_matches_flat_cache_model(self):
        # Calibration: a fully warm, local, cache-resident copy charges
        # exactly what the flat CacheModel charges (same per-line cost).
        costs = CostModel()
        mem = MemoryHierarchy(mem_config())
        for nbytes in (1, 64, 1448, 4096, 8960):
            info = (mem.lines_of(nbytes), 0, 0, 0)
            assert mem.copy_cycles(
                nbytes, info, costs.cache.copy_cycles_per_byte
            ) == pytest.approx(costs.copy_cycles(nbytes))

    def test_meminfo_shortfall_priced_as_local_dram(self):
        mem = MemoryHierarchy(mem_config())
        nothing = mem.copy_cycles(1448, (0, 0, 0, 0), 0.75)
        all_cold = mem.copy_cycles(
            1448, (0, 0, mem.lines_of(1448), 0), 0.75
        )
        assert nothing == pytest.approx(all_cold)

    def test_dst_spill_adds_rfo(self):
        small = MemoryHierarchy(mem_config(app_working_set_bytes=0))
        big = MemoryHierarchy(
            mem_config(app_working_set_bytes=64 * 1024 * 1024)
        )
        assert small.dst_cold_fraction == 0.0
        assert 0.9 < big.dst_cold_fraction < 1.0
        info = (small.lines_of(1448), 0, 0, 0)
        assert big.copy_cycles(1448, info, 0.75) > small.copy_cycles(1448, info, 0.75)


# ----------------------------------------------------------------------
# zero-copy charge model
# ----------------------------------------------------------------------
class TestZcrxCycles:
    def test_page_accounting(self):
        costs = CostModel()
        cycles, pages, cold = zcrx_item_cycles(costs, 3 * 4096 + 1, None)
        assert pages == 4
        assert cold == 0
        assert cycles == pytest.approx(
            costs.zc_setup_per_skb + 4 * costs.zc_map_per_page
        )

    def test_cold_fraction_scales_fault_charge(self):
        costs = CostModel()
        warm = zcrx_item_cycles(costs, 8192, (128, 0, 0, 0))
        half = zcrx_item_cycles(costs, 8192, (64, 0, 64, 0))
        cold = zcrx_item_cycles(costs, 8192, (0, 0, 128, 0))
        assert warm[2] == 0 and cold[2] == 2
        assert warm[0] < half[0] < cold[0]

    def test_zero_bytes_is_free(self):
        assert zcrx_item_cycles(CostModel(), 0, None) == (0.0, 0, 0)


# ----------------------------------------------------------------------
# end to end: flat equivalence and byte-stream integrity
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_flat_default_is_bit_identical_to_pre_mem_rows(self):
        """mem=None (the default) must reproduce the pinned UP-optimized
        quick row exactly — same events fired, same goodput."""
        result = run_stream_experiment(
            linux_up_config(), OptimizationConfig.optimized(),
            duration=0.05, warmup=0.05,
        )
        assert result.events_fired == 84998
        assert result.throughput_mbps == pytest.approx(4707.7376, abs=1e-6)

    def _materialized_transfer(self, opt, mem=None, nbytes=300_000, seed=11):
        sim = Simulator()
        cfg = dataclasses.replace(linux_up_config(), n_nics=1, mem=mem)
        machine = ReceiverMachine(sim, cfg, opt, ip=SERVER)
        received = []
        machine.listen(
            5001,
            lambda sock: setattr(
                sock, "on_data_cb",
                lambda s, payload, length: received.append(payload),
            ),
        )
        client = ClientHost(sim, ip_from_str("10.0.1.1"))
        machine.add_client(client, rng=SeededRng(seed, "impair"))
        sock = client.connect(SERVER, 5001, config=TcpConfig(materialize_payload=True))
        sock.conn.attach_source(
            InfiniteSource(materialize=True, seed=seed, limit_bytes=nbytes)
        )
        sim.run(until=5.0)
        server_sock = next(iter(machine.kernel.sockets.values()))
        return machine, server_sock, b"".join(p for p in received if p)

    def test_zcrx_preserves_the_byte_stream(self):
        machine, sock, payload = self._materialized_transfer(
            OptimizationConfig.zcrx(), mem=mem_config()
        )
        assert sock.bytes_received == 300_000
        assert payload == InfiniteSource.pattern(0, 300_000, seed=11)
        assert machine.kernel.zcrx.skbs > 0
        assert machine.kernel.zcrx.pages_mapped > 0
        assert machine.kernel.copy_charged_items == 0

    def test_copy_mode_charges_copy_and_not_zcrx(self):
        machine, sock, payload = self._materialized_transfer(
            OptimizationConfig.optimized(), mem=mem_config()
        )
        assert sock.bytes_received == 300_000
        assert payload == InfiniteSource.pattern(0, 300_000, seed=11)
        assert machine.kernel.copy_charged_items > 0
        assert machine.kernel.zcrx.skbs == 0

    def test_hierarchy_counters_live_on_the_stream_rig(self):
        machine, _, _ = self._materialized_transfer(
            OptimizationConfig.optimized(), mem=mem_config()
        )
        mem = machine.mem
        assert mem.ddio_placements > 0
        assert mem.llc_hits > 0
        # Single-node UP rig: nothing is ever remote.
        assert mem.remote_line_fetches == 0

    def test_xen_rejects_mem_config(self):
        from repro.xen.machine import XenReceiverMachine
        from repro.host.configs import xen_config

        cfg = dataclasses.replace(xen_config(), mem=mem_config())
        with pytest.raises(ValueError, match="not modelled for the Xen"):
            XenReceiverMachine(
                Simulator(), cfg, OptimizationConfig.optimized()
            )


# ----------------------------------------------------------------------
# sanitizer audits fire on tampered state
# ----------------------------------------------------------------------
class TestSanitizerAudits:
    @pytest.fixture(autouse=True)
    def _fresh_sanitizer_state(self):
        from repro.analysis import sanitizer as sanitizer_mod

        if sanitizer_mod.is_installed():
            uninstall()
        yield
        if sanitizer_mod.is_installed():
            uninstall()

    def _run_with_corruption(self, corrupt, opt=None):
        from repro.workloads.stream import build_stream_rig

        handle = install()
        try:
            cfg = dataclasses.replace(
                linux_up_config(), n_nics=2, mem=mem_config()
            )
            sim, machine, clients, senders = build_stream_rig(
                cfg, opt or OptimizationConfig.optimized()
            )
            sim.run(until=0.01)
            corrupt(machine)
            sim.run(until=0.02)
        finally:
            uninstall(handle)

    def test_clean_mem_rig_passes(self):
        self._run_with_corruption(lambda machine: None)
        self._run_with_corruption(
            lambda machine: None, opt=OptimizationConfig.zcrx()
        )

    def test_occupancy_counter_tamper_fires(self):
        def corrupt(machine):
            machine.mem.nodes[0].io_occupancy += 7

        with pytest.raises(InvariantViolation, match="DDIO occupancy accounting"):
            self._run_with_corruption(corrupt)

    def test_occupancy_bound_tamper_fires(self):
        # Shrinking the capacity keeps conservation consistent (placement
        # evicts down to it) but leaves occupancy > capacity the moment the
        # next frame lands — only the bound audit can catch that.
        def corrupt(machine):
            machine.mem.nodes[0].io_capacity_lines = -1

        with pytest.raises(InvariantViolation, match="I/O-way capacity"):
            self._run_with_corruption(corrupt)

    def test_unevictable_entry_tamper_fires(self):
        def corrupt(machine):
            node = machine.mem.nodes[0]
            node.fifo.clear()

        with pytest.raises(InvariantViolation, match="never be evicted"):
            self._run_with_corruption(corrupt)

    def test_copy_charge_under_zcrx_fires(self):
        def corrupt(machine):
            machine.kernel.copy_charged_items += 1

        with pytest.raises(InvariantViolation, match="no-copy-under-zcrx"):
            self._run_with_corruption(corrupt, opt=OptimizationConfig.zcrx())


# ----------------------------------------------------------------------
# slab satellites: configurable capacity + freelist-miss counter
# ----------------------------------------------------------------------
class TestSlabSatellites:
    def test_capacity_constructor_arg(self):
        from repro.buffers.slab import PacketSlab

        assert PacketSlab(capacity=17).capacity == 17

    def test_capacity_env_override(self, monkeypatch):
        from repro.buffers.slab import PacketSlab

        monkeypatch.setenv("REPRO_SLAB_CAP", "123")
        assert PacketSlab().capacity == 123
        monkeypatch.delenv("REPRO_SLAB_CAP")
        assert PacketSlab().capacity == 8192

    def test_miss_counter_counts_empty_freelist_acquires(self):
        from repro.buffers.slab import PacketSlab

        slab = PacketSlab(capacity=4)
        assert slab.acquire() is None
        assert slab.misses == 1
        pkt = make_packet()
        pkt.payload = None
        pkt._slab_free = False
        assert slab.release(pkt)
        assert slab.acquire() is pkt
        assert slab.misses == 1


# ----------------------------------------------------------------------
# runner / CLI plumbing
# ----------------------------------------------------------------------
class TestRunnerPlumbing:
    def test_numa_nodes_rejected_by_unsupporting_experiment(self):
        from repro.experiments.runner import run_experiment

        with pytest.raises(ValueError, match="memory hierarchy"):
            run_experiment("figure7", quick=True, numa_nodes=2)

    def test_zero_copy_rejected_by_unsupporting_experiment(self):
        from repro.experiments.runner import run_experiment

        with pytest.raises(ValueError, match="receive mode"):
            run_experiment("figure7", quick=True, zero_copy=True)

    def test_bad_numa_nodes_rejected_loudly(self):
        from repro.experiments.extension_zero_copy import run

        with pytest.raises(ValueError, match="numa-nodes"):
            run(quick=True, numa_nodes=0)

    def test_unknown_system_rejected_loudly(self):
        from repro.experiments.extension_zero_copy import run

        with pytest.raises(ValueError, match="unknown system"):
            run(quick=True, systems=("vax",))


# ----------------------------------------------------------------------
# sweep rows: serial == parallel
# ----------------------------------------------------------------------
class TestSweepDeterminism:
    def test_serial_matches_parallel_rows(self):
        from repro.experiments.extension_zero_copy import _measure_point
        from repro.parallel import run_points

        points = [
            ("up", 256 << 10, 1, False, 0.02, 0.02),
            ("up", 16 << 20, 1, False, 0.02, 0.02),
        ]
        serial = [_measure_point(p) for p in points]
        parallel = run_points(_measure_point, points, jobs=2)
        assert serial == parallel

    def test_crossover_on_the_up_rig(self):
        """Mechanistic expectation: copy cycles/byte beats zcrx sub-LLC
        and loses past the LLC, where zcrx stays flat."""
        from repro.experiments.extension_zero_copy import _measure_point

        small = _measure_point(("up", 256 << 10, 1, False, 0.02, 0.02))
        large = _measure_point(("up", 16 << 20, 1, False, 0.02, 0.02))
        assert small["copy cyc/B"] < small["zcrx cyc/B"]
        assert large["copy cyc/B"] > large["zcrx cyc/B"]
        assert large["zcrx cyc/B"] == pytest.approx(small["zcrx cyc/B"], rel=0.05)
        assert large["zcrx Mb/s"] > large["copy Mb/s"]
