"""RSS hash, indirection table, and steering-policy tests.

The Toeplitz implementation is checked against the published IPv4-with-TCP
test vectors of the RSS specification, then for the properties the
multi-queue subsystem relies on: determinism (same flow, same queue —
always) and reasonable uniformity over the indirection table.
"""

import random

import pytest

from repro.mq.rss import (
    INDIRECTION_SLOTS,
    RSS_DEFAULT_KEY,
    IndirectionTable,
    RssHasher,
    flow_input_bytes,
    toeplitz_hash,
)
from repro.mq.steering import FlowSteering, StaticRssSteering, make_policy
from repro.net.addresses import ip_from_str
from repro.net.flow import FlowKey

#: Published IPv4-with-TCP test vectors from the RSS specification
#: (source ip:port -> destination ip:port => expected 32-bit hash).
SPEC_VECTORS = [
    (("66.9.149.187", 2794), ("161.142.100.80", 1766), 0x51CCC178),
    (("199.92.111.2", 14230), ("65.69.140.83", 4739), 0xC626B0EA),
]


@pytest.mark.parametrize("src, dst, expected", SPEC_VECTORS)
def test_toeplitz_matches_spec_vectors(src, dst, expected):
    data = flow_input_bytes(
        ip_from_str(src[0]), src[1], ip_from_str(dst[0]), dst[1]
    )
    assert toeplitz_hash(data, RSS_DEFAULT_KEY) == expected


def test_toeplitz_rejects_short_key():
    with pytest.raises(ValueError):
        toeplitz_hash(b"\x01" * 12, key=b"\x02" * 12)


def test_hasher_deterministic_and_cached():
    key = FlowKey(ip_from_str("10.0.1.1"), 40000, ip_from_str("10.0.0.1"), 5001)
    a, b = RssHasher(), RssHasher()
    assert a.hash_flow(key) == b.hash_flow(key)  # independent instances agree
    assert a.hash_flow(key) == a.hash_flow(key)  # cache returns the same value
    direct = toeplitz_hash(flow_input_bytes(*key))
    assert a.hash_flow(key) == direct


def _random_flows(n, seed=20080805):
    rng = random.Random(seed)
    flows = set()
    while len(flows) < n:
        flows.add(
            FlowKey(
                rng.getrandbits(32), rng.randrange(1024, 65536),
                rng.getrandbits(32), rng.randrange(1024, 65536),
            )
        )
    return sorted(flows)


def test_indirection_uniform_within_2x_for_400_random_flows():
    """400 random flows over the 128-slot table: per-queue load within 2x of
    the fair share, and the hash exercises nearly the whole table."""
    n_queues = 4
    hasher = RssHasher()
    table = IndirectionTable(n_queues)
    flows = _random_flows(400)
    hashes = [hasher.hash_flow(f) for f in flows]

    per_queue = [0] * n_queues
    for h in hashes:
        per_queue[table.queue_for(h)] += 1
    fair = len(flows) / n_queues
    for queue, count in enumerate(per_queue):
        assert fair / 2 <= count <= fair * 2, (
            f"queue {queue} got {count} of {len(flows)} flows (fair {fair:.0f})"
        )

    slot_counts = table.occupancy(hashes)
    assert len(slot_counts) == INDIRECTION_SLOTS
    assert sum(slot_counts) == len(flows)
    # ~5-6 empty slots expected from a uniform hash at 400/128; dozens empty
    # would mean the low bits are biased.
    assert sum(1 for c in slot_counts if c > 0) >= 100


def test_indirection_table_validation_and_programming():
    with pytest.raises(ValueError):
        IndirectionTable(0)
    with pytest.raises(ValueError):
        IndirectionTable(2, n_slots=100)  # not a power of two
    table = IndirectionTable(2)
    assert table.slots == [i % 2 for i in range(INDIRECTION_SLOTS)]
    table.program(3, 1)
    assert table.slots[3] == 1
    with pytest.raises(ValueError):
        table.program(0, 5)


def test_static_rss_steering_deterministic():
    policy_a, policy_b = StaticRssSteering(4), StaticRssSteering(4)
    flows = _random_flows(50, seed=7)
    for flow in flows:
        queue = policy_a.select(flow)
        assert 0 <= queue < 4
        assert policy_b.select(flow) == queue   # independent instances agree
        assert policy_a.select(flow) == queue   # stable across calls
        assert policy_a.peek(flow) == queue     # peek matches select
        assert policy_a.generation(flow) == 0   # static RSS never re-steers
    policy_a.note_consumer(flows[0], 3)         # no-op for static RSS
    assert policy_a.peek(flows[0]) == policy_b.peek(flows[0])


def test_flow_steering_overrides_rss_and_bumps_generation():
    policy = FlowSteering(4)
    flow = FlowKey(ip_from_str("10.0.1.1"), 40000, ip_from_str("10.0.0.1"), 5001)
    rss_queue = policy.select(flow)
    assert policy.generation(flow) == 0

    policy.note_consumer(flow, cpu_index=(rss_queue + 1) % 4)
    steered = (rss_queue + 1) % 4
    assert policy.select(flow) == steered
    assert policy.peek(flow) == steered
    assert policy.generation(flow) == 1
    assert policy.stats.filters_installed == 1

    policy.note_consumer(flow, cpu_index=steered)  # same CPU: no re-steer
    assert policy.generation(flow) == 1
    policy.note_consumer(flow, cpu_index=(steered + 1) % 4)
    assert policy.generation(flow) == 2
    assert policy.stats.filters_reprogrammed == 1


def test_make_policy():
    assert isinstance(make_policy("rss", 2), StaticRssSteering)
    assert isinstance(make_policy("arfs", 2), FlowSteering)
    with pytest.raises(ValueError):
        make_policy("hash-of-the-day", 2)


def test_queues1_reproduces_figure12_quick_rows():
    """The q=1 column of the RSS scaling sweep IS the Figure 12 rig:
    identical code path, hence bit-identical numbers."""
    from repro.experiments import extension_rss_scaling, figure12_scalability
    from repro.experiments.base import QUICK_DURATION, QUICK_WARMUP

    fig12_row = figure12_scalability._measure_point((5, QUICK_DURATION, QUICK_WARMUP))
    rss_row = extension_rss_scaling._measure_point((1, 5, QUICK_DURATION, QUICK_WARMUP))
    for col in ("Original Mb/s", "Optimized Mb/s", "gain %", "aggregation degree"):
        assert rss_row[col] == fig12_row[col]  # bit-identical, not approx
