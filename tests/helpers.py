"""Test harnesses: directly-wired TCP connection pairs with fault injection."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.addresses import ip_from_str
from repro.net.flow import FlowKey
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.timers import SimTimers
from repro.tcp.connection import AckEvent, TcpConfig, TcpConnection
from repro.tcp.socket import TcpSocket

IP_A = ip_from_str("10.0.0.1")
IP_B = ip_from_str("10.0.0.2")


class DirectTransport:
    """Delivers packets straight to the peer connection after a fixed delay.

    ``filter_fn(pkt) -> bool`` decides delivery (False = drop); ``sent``
    records every packet for inspection.
    """

    def __init__(self, sim: Simulator, delay: float = 20e-6):
        self.sim = sim
        self.delay = delay
        self.peer: Optional[TcpConnection] = None
        self.sent: List[Packet] = []
        self.filter_fn: Optional[Callable[[Packet], bool]] = None

    def send_packet(self, conn: TcpConnection, pkt: Packet) -> None:
        self.sent.append(pkt)
        if self.filter_fn is not None and not self.filter_fn(pkt):
            return
        self.sim.schedule(self.delay, self.peer.on_segment, pkt)

    def send_acks(self, conn: TcpConnection, event: AckEvent) -> None:
        for ack in event.acks:
            self.send_packet(conn, conn.build_ack_packet(ack, event))


def make_pair(sim: Simulator, config_a: Optional[TcpConfig] = None, config_b: Optional[TcpConfig] = None,
              handshake: bool = True):
    """Two connected endpoints (A actively opened to B) with app sockets."""
    config_a = config_a or TcpConfig(materialize_payload=True)
    config_b = config_b or TcpConfig(materialize_payload=True)
    timers = SimTimers(sim)
    ta, tb = DirectTransport(sim), DirectTransport(sim)
    key_a = FlowKey(IP_A, 10000, IP_B, 80)
    conn_a = TcpConnection(key_a, config_a, lambda: sim.now, timers, ta, iss=1000, name="A")
    conn_b = TcpConnection(key_a.reverse(), config_b, lambda: sim.now, timers, tb, iss=9000, name="B")
    ta.peer, tb.peer = conn_b, conn_a
    sock_a, sock_b = TcpSocket(conn_a), TcpSocket(conn_b)
    conn_b.passive_open()
    conn_a.connect()
    if handshake:
        sim.run(until=sim.now + 0.01)
        assert sock_a.established
    return conn_a, conn_b, sock_a, sock_b, ta, tb
