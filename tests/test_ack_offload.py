"""Acknowledgment Offload tests (paper §4): template build and expansion."""

import pytest

from repro.buffers.pool import BufferPool
from repro.core.ack_offload import build_template_ack_skb, expand_template
from repro.net.addresses import ip_from_str
from repro.net.checksum import checksums_equivalent
from repro.net.flow import FlowKey
from repro.net.tcp_header import TcpFlags
from repro.sim.engine import Simulator
from repro.sim.timers import SimTimers
from repro.tcp.connection import AckEvent, TcpConfig, TcpConnection

SERVER = ip_from_str("10.0.0.1")
CLIENT = ip_from_str("10.0.1.1")


class _NullTransport:
    def send_packet(self, conn, pkt):
        pass

    def send_acks(self, conn, event):
        pass


def make_conn(sim):
    key = FlowKey(SERVER, 5001, CLIENT, 10000)
    conn = TcpConnection(key, TcpConfig(), lambda: sim.now, SimTimers(sim), _NullTransport(), iss=500)
    conn.state = conn.state.ESTABLISHED
    conn.rcv_nxt = 1000
    return conn


def make_event(acks, window=1000, ts=(42, 41)):
    return AckEvent(acks=list(acks), window=window, timestamp=ts)


def test_template_carries_all_ack_numbers(sim):
    conn = make_conn(sim)
    pool = BufferPool("t")
    event = make_event([1000, 2896, 5792])
    skb = build_template_ack_skb(conn, event, pool)
    assert skb.is_template_ack
    assert skb.template_acks == [1000, 2896, 5792]
    # The head packet is the FIRST ACK of the sequence (§4.2).
    assert skb.head.tcp.ack == 1000
    assert skb.head.is_pure_ack
    skb.free()
    pool.assert_balanced()


def test_empty_batch_rejected(sim):
    with pytest.raises(ValueError):
        build_template_ack_skb(make_conn(sim), make_event([]), BufferPool("t"))


def test_expansion_yields_one_packet_per_ack(sim):
    conn = make_conn(sim)
    skb = build_template_ack_skb(conn, make_event([100, 200, 300, 400]), BufferPool("t"))
    packets = expand_template(skb)
    assert [p.tcp.ack for p in packets] == [100, 200, 300, 400]
    assert all(p.is_pure_ack for p in packets)
    skb.free()


def test_expanded_acks_share_header_fields(sim):
    """§4.2: successive ACKs differ only in ACK number and checksum."""
    conn = make_conn(sim)
    skb = build_template_ack_skb(conn, make_event([100, 200], window=777, ts=(9, 8)), BufferPool("t"))
    a, b = expand_template(skb)
    assert a.tcp.window == b.tcp.window == 777
    assert a.tcp.options.timestamp == b.tcp.options.timestamp == (9, 8)
    assert a.tcp.seq == b.tcp.seq
    assert a.ip.src_ip == b.ip.src_ip
    assert a.tcp.ack != b.tcp.ack
    skb.free()


def test_incremental_checksum_matches_full_recompute(sim):
    """The driver's RFC 1624 patch must equal recomputing from scratch."""
    conn = make_conn(sim)
    acks = [1000, 2448, 3896, 12345678, 0xFFFFFF00]
    skb = build_template_ack_skb(conn, make_event(acks), BufferPool("t"))
    for pkt in expand_template(skb):
        full = pkt.tcp.compute_checksum(pkt.ip.src_ip, pkt.ip.dst_ip, b"")
        assert checksums_equivalent(pkt.tcp.checksum, full), hex(pkt.tcp.ack)
    skb.free()


def test_expansion_does_not_mutate_template(sim):
    conn = make_conn(sim)
    skb = build_template_ack_skb(conn, make_event([100, 200, 300]), BufferPool("t"))
    before = skb.head.tcp.ack
    expand_template(skb)
    expand_template(skb)  # idempotent
    assert skb.head.tcp.ack == before
    skb.free()


def test_expanding_non_template_rejected(sim):
    conn = make_conn(sim)
    pool = BufferPool("t")
    skb = pool.alloc(conn.build_ack_packet(100, make_event([100])))
    with pytest.raises(ValueError):
        expand_template(skb)
    skb.free()


def test_connection_batches_consecutive_acks_into_one_event(sim):
    """An aggregated packet of 2k fragments yields ONE AckEvent with k acks."""
    events = []

    class Recorder:
        def send_packet(self, conn, pkt):
            pass

        def send_acks(self, conn, event):
            events.append(event)

    key = FlowKey(SERVER, 5001, CLIENT, 10000)
    conn = TcpConnection(
        key, TcpConfig(aggregation_aware=True), lambda: sim.now, SimTimers(sim), Recorder(), iss=500
    )
    conn.state = conn.state.ESTABLISHED
    conn.rcv_nxt = 1000
    conn.snd_una = conn.snd_nxt = 501

    from repro.net.packet import make_data_segment

    mss = 1448
    head = make_data_segment(CLIENT, SERVER, 10000, 5001, seq=1000, ack=501,
                             payload_len=mss, timestamp=(3, 2))
    end_seqs = [1000 + (i + 1) * mss for i in range(6)]
    conn.on_segment(
        head,
        frag_acks=[501] * 6,
        frag_end_seqs=end_seqs,
        frag_windows=[65535] * 6,
        nr_segments=6,
        agg_len=6 * mss,
    )
    assert len(events) == 1
    assert events[0].acks == [end_seqs[1], end_seqs[3], end_seqs[5]]
