"""Tests for the :mod:`repro.parallel` sweep runner.

The invariant under test: parallelism never changes science output.  A
sweep run with ``jobs=2`` must return exactly what the serial run returns,
in the same order.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import figure11_aggregation_limit
from repro.parallel import resolve_jobs, run_points


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"boom {x}")


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    assert resolve_jobs(-1) >= 1


def test_serial_matches_parallel_order():
    points = list(range(10))
    assert run_points(_square, points) == run_points(_square, points, jobs=2)
    assert run_points(_square, points, jobs=2) == [x * x for x in points]


def test_empty_and_single_point():
    assert run_points(_square, []) == []
    assert run_points(_square, [3], jobs=8) == [9]


def test_worker_exception_propagates_serial_and_parallel():
    with pytest.raises(ValueError):
        run_points(_boom, [1, 2])
    with pytest.raises(ValueError):
        run_points(_boom, [1, 2], jobs=2)


def test_figure11_quick_rows_identical_serial_vs_parallel():
    """End-to-end: a real sweep experiment yields bit-identical rows with
    and without worker processes (per-point isolated simulations)."""
    serial = figure11_aggregation_limit.run(quick=True)
    parallel = figure11_aggregation_limit.run(quick=True, jobs=2)
    assert json.dumps(serial.rows) == json.dumps(parallel.rows)
