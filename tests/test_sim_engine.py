"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_initial_state(sim):
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_fired == 0


def test_schedule_and_run_advances_clock(sim):
    fired = []
    sim.schedule(1e-3, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == pytest.approx(1e-3)


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(3e-3, order.append, 3)
    sim.schedule(1e-3, order.append, 1)
    sim.schedule(2e-3, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order(sim):
    order = []
    for i in range(10):
        sim.schedule(1e-3, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_cancelled_event_does_not_fire(sim):
    fired = []
    ev = sim.schedule(1e-3, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent(sim):
    ev = sim.schedule(1e-3, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1e-3, fired.append, "early")
    sim.schedule(5e-3, fired.append, "late")
    sim.run(until=2e-3)
    assert fired == ["early"]
    assert sim.now == pytest.approx(2e-3)
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events(sim):
    sim.run(until=0.5)
    assert sim.now == pytest.approx(0.5)


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_at_in_the_past_rejected(sim):
    sim.schedule(1e-3, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.0, lambda: None)


def test_events_scheduled_during_run_fire(sim):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 4:
            sim.schedule(1e-4, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_max_events_bound(sim):
    fired = []

    def rearm():
        fired.append(sim.now)
        sim.schedule(1e-6, rearm)

    sim.schedule(0.0, rearm)
    sim.run(max_events=10)
    assert len(fired) == 10


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_pending_counts_only_live_events(sim):
    ev1 = sim.schedule(1e-3, lambda: None)
    sim.schedule(2e-3, lambda: None)
    assert sim.pending == 2
    ev1.cancel()
    assert sim.pending == 1
