"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_initial_state(sim):
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_fired == 0


def test_schedule_and_run_advances_clock(sim):
    fired = []
    sim.schedule(1e-3, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == pytest.approx(1e-3)


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(3e-3, order.append, 3)
    sim.schedule(1e-3, order.append, 1)
    sim.schedule(2e-3, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order(sim):
    order = []
    for i in range(10):
        sim.schedule(1e-3, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_cancelled_event_does_not_fire(sim):
    fired = []
    ev = sim.schedule(1e-3, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent(sim):
    ev = sim.schedule(1e-3, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1e-3, fired.append, "early")
    sim.schedule(5e-3, fired.append, "late")
    sim.run(until=2e-3)
    assert fired == ["early"]
    assert sim.now == pytest.approx(2e-3)
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events(sim):
    sim.run(until=0.5)
    assert sim.now == pytest.approx(0.5)


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_at_in_the_past_rejected(sim):
    sim.schedule(1e-3, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.0, lambda: None)


def test_events_scheduled_during_run_fire(sim):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 4:
            sim.schedule(1e-4, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_max_events_bound(sim):
    fired = []

    def rearm():
        fired.append(sim.now)
        sim.schedule(1e-6, rearm)

    sim.schedule(0.0, rearm)
    sim.run(max_events=10)
    assert len(fired) == 10


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_pending_counts_only_live_events(sim):
    ev1 = sim.schedule(1e-3, lambda: None)
    sim.schedule(2e-3, lambda: None)
    assert sim.pending == 2
    ev1.cancel()
    assert sim.pending == 1


def test_post_and_call_at_interleave_with_schedule_in_order(sim):
    """Token-less (post/call_at) and token-carrying (schedule/at) entries
    share one heap and fire strictly in (time, scheduling) order."""
    order = []
    sim.schedule(2e-3, order.append, "s2")
    sim.post(1e-3, order.append, "p1")
    sim.at(1e-3, order.append, "a1")
    sim.call_at(2e-3, order.append, "c2")
    sim.run()
    assert order == ["p1", "a1", "s2", "c2"]


def test_post_rejects_negative_delay(sim):
    with pytest.raises(SimulationError):
        sim.post(-1e-9, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_at(-1.0, lambda: None)


def test_events_fired_counts_same_via_run_and_step(sim):
    """run() and step() share one accounting: cancelled entries never count."""
    for i in range(5):
        sim.schedule(1e-3 * (i + 1), lambda: None)
    sim.schedule(6e-3, lambda: None).cancel()
    while sim.step():
        pass
    fired_via_step = sim.events_fired

    sim2 = Simulator()
    for i in range(5):
        sim2.schedule(1e-3 * (i + 1), lambda: None)
    sim2.schedule(6e-3, lambda: None).cancel()
    sim2.run()
    assert fired_via_step == sim2.events_fired == 5


def test_max_events_ignores_cancelled_entries(sim):
    fired = []
    cancelled = [sim.schedule(1e-4 * i, lambda: None) for i in range(1, 4)]
    for ev in cancelled:
        ev.cancel()
    sim.schedule(1e-3, fired.append, "a")
    sim.schedule(2e-3, fired.append, "b")
    sim.run(max_events=2)
    assert fired == ["a", "b"]
    assert sim.events_fired == 2


def test_heap_compaction_drops_cancelled_entries(sim):
    """Mass-cancelling timers must shrink the heap, not just mark entries."""
    events = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(500)]
    keep = sim.schedule(2.0, lambda: None)
    assert sim.pending == 501
    for ev in events:
        ev.cancel()
    # Compaction triggers once cancelled entries outnumber live ones (and
    # exceed the minimum batch), so the physical heap must have been rebuilt
    # down to the one live entry plus at most one sub-threshold batch of
    # still-marked entries.
    assert sim.pending == 1
    assert len(sim._heap) < 140
    sim.run()
    assert sim.events_fired == 1
    assert keep._fired


def test_cancel_inside_run_of_later_event(sim):
    """An event firing may cancel a later pending event mid-run."""
    fired = []
    later = sim.schedule(2e-3, fired.append, "later")
    sim.schedule(1e-3, later.cancel)
    sim.run()
    assert fired == []
    assert sim.pending == 0


def test_compaction_during_run_preserves_order(sim):
    """Compaction happens while run() iterates; firing order must survive."""
    order = []
    doomed = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(200)]

    def cancel_all():
        order.append("cancel")
        for ev in doomed:
            ev.cancel()

    sim.schedule(1e-3, cancel_all)
    sim.schedule(2e-3, order.append, "after")
    sim.run()
    assert order == ["cancel", "after"]
    assert sim.pending == 0
