"""Tests for the many-connection workload generator (scale regime)."""

import pytest

from repro.core.config import OptimizationConfig
from repro.host.configs import linux_up_config
from repro.workloads.many import (
    ManyConnWorkload,
    build_many_connection_rig,
    run_many_connection_experiment,
)

#: Small population, short window: the semantics under test don't need 1k.
SMALL = dict(n_connections=60, seed=7)


def _run(duration=0.04, warmup=0.02, **kw):
    wl = ManyConnWorkload(**{**SMALL, **kw})
    return run_many_connection_experiment(
        linux_up_config(), OptimizationConfig.optimized(), wl,
        duration=duration, warmup=warmup,
    )


def test_same_seed_is_event_identical():
    a = _run()
    b = _run()
    assert a == b  # every field, including events_fired, bit-identical


def test_different_seed_changes_schedule():
    a = _run()
    b = _run(seed=8)
    assert a.events_fired != b.events_fired


def test_mix_makes_progress():
    r = _run()
    assert r.transactions > 0          # mice complete RPC round-trips
    assert r.bytes_received > 0        # elephants stream bulk data
    assert r.throughput_mbps > 0
    assert r.connections_opened == 60  # full population came up
    assert r.allocations_saved > 0     # the slab is recycling at scale


def test_poisson_churn_opens_and_closes_connections():
    r = _run(arrival_rate_hz=2000.0, duration=0.05)
    assert r.connections_opened > 60
    assert r.connections_closed > 0
    # Churned connections close after their transaction quota; residents
    # never close.
    assert r.connections_closed <= r.connections_opened - 60


def test_no_churn_when_rate_zero():
    r = _run(arrival_rate_hz=0.0)
    assert r.connections_opened == 60
    assert r.connections_closed == 0


def test_elephant_fraction_splits_population():
    wl = ManyConnWorkload(**SMALL, elephant_fraction=0.25)
    sim, machine, clients, driver = build_many_connection_rig(
        linux_up_config(), OptimizationConfig.optimized(), wl
    )
    driver.start()
    sim.run(until=wl.stagger_s * 2)
    assert len(driver.elephants) == 15
    assert len(driver.mice) == 45


def test_batching_halves_events_with_bounded_timing_skew():
    """Link batching collapses per-frame delivery events into one per
    window.  It is NOT bit-neutral — each frame is held up to one window
    (25 us) past its wire arrival, like NIC interrupt moderation — but the
    skew is bounded: the workload must land within a fraction of a percent
    of the unbatched rig while firing far fewer scheduler events."""
    batched = _run()
    unbatched = _run(batch_window_s=0.0)
    assert batched.connections_opened == unbatched.connections_opened
    assert batched.transactions == pytest.approx(unbatched.transactions, rel=0.02)
    assert batched.bytes_received == pytest.approx(unbatched.bytes_received, rel=0.01)
    # The event saving is the whole point: roughly one event per window
    # instead of one per frame.
    assert batched.events_fired < 0.7 * unbatched.events_fired


def test_sanitized_many_conn_run():
    """The full scale rig — wheel, slab, batching — under the runtime
    sanitizer's conservation and reuse-after-free audits."""
    from repro.analysis import sanitizer as sanitizer_mod

    fresh = not sanitizer_mod.is_installed()
    handle = sanitizer_mod.install(deep_every=64) if fresh else None
    try:
        r = _run(n_connections=30, duration=0.03, warmup=0.015,
                 arrival_rate_hz=1000.0)
    finally:
        if handle is not None:
            sanitizer_mod.uninstall(handle)
    assert r.transactions > 0
    assert r.allocations_saved > 0
