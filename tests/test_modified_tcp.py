"""Modified TCP layer tests (paper §3.4): the connection must behave exactly
as if every network packet had been processed individually."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.modified_tcp import acks_for_fragments, replay_fragment_acks
from repro.net.addresses import ip_from_str
from repro.net.flow import FlowKey
from repro.net.packet import make_data_segment
from repro.sim.engine import Simulator
from repro.sim.timers import SimTimers
from repro.tcp.connection import TcpConfig, TcpConnection
from repro.tcp.reno import RenoState
from repro.tcp.state import TcpState

SERVER = ip_from_str("10.0.0.1")
CLIENT = ip_from_str("10.0.1.1")
MSS = 1448


class _Recorder:
    def __init__(self):
        self.packets = []
        self.events = []

    def send_packet(self, conn, pkt):
        self.packets.append(pkt)

    def send_acks(self, conn, event):
        self.events.append(event)


def make_established(sim, aggregation_aware):
    key = FlowKey(SERVER, 5001, CLIENT, 10000)
    transport = _Recorder()
    conn = TcpConnection(
        key, TcpConfig(aggregation_aware=aggregation_aware),
        lambda: sim.now, SimTimers(sim), transport, iss=500,
    )
    conn.state = TcpState.ESTABLISHED
    conn.rcv_nxt = 1000
    conn.snd_una = conn.snd_nxt = 501
    return conn, transport


def data_pkt(seq, ack=501, length=MSS):
    return make_data_segment(CLIENT, SERVER, 10000, 5001, seq=seq, ack=ack,
                             payload_len=length, timestamp=(3, 2))


def feed_aggregated(conn, n_frags, start_seq=1000, acks=None):
    end_seqs = [start_seq + (i + 1) * MSS for i in range(n_frags)]
    frag_acks = acks if acks is not None else [501] * n_frags
    head = data_pkt(start_seq, ack=frag_acks[0])
    head.tcp.ack = frag_acks[-1]
    conn.on_segment(
        head,
        frag_acks=frag_acks,
        frag_end_seqs=end_seqs,
        frag_windows=[65535] * n_frags,
        nr_segments=n_frags,
        agg_len=n_frags * MSS,
    )
    return end_seqs


# ---------------------------------------------------------------- reference functions
def test_acks_for_fragments_every_second_segment():
    acks, carry = acks_for_fragments([100, 200, 300, 400], 0)
    assert acks == [200, 400]
    assert carry == 0


def test_acks_for_fragments_carry_in_and_out():
    acks, carry = acks_for_fragments([100, 200, 300], 1)
    assert acks == [100, 300]
    assert carry == 0


def test_replay_fragment_acks_grows_per_ack():
    reno = RenoState(mss=1000)
    start = reno.cwnd
    reno, una = replay_fragment_acks(reno, 0, [1000, 2000, 3000])
    assert una == 3000
    assert reno.cwnd == start + 3000  # slow start: +MSS per ACK, 3 ACKs


def test_replay_ignores_stale_acks():
    reno = RenoState(mss=1000)
    start = reno.cwnd
    reno, una = replay_fragment_acks(reno, 5000, [4000, 5000, 6000])
    assert una == 6000
    assert reno.cwnd == start + 1000  # only one ack advanced


# ---------------------------------------------------------------- equivalence
def test_ack_generation_matches_unaggregated_receiver(sim):
    """k fragments in one aggregate must produce the same ACK numbers as k
    individual packets (§3.4 case 2)."""
    agg_conn, agg_t = make_established(sim, aggregation_aware=True)
    plain_conn, plain_t = make_established(sim, aggregation_aware=False)

    feed_aggregated(agg_conn, 7)
    for i in range(7):
        plain_conn.on_segment(data_pkt(1000 + i * MSS))

    agg_acks = [a for e in agg_t.events for a in e.acks]
    plain_acks = [a for e in plain_t.events for a in e.acks]
    assert agg_acks == plain_acks
    assert agg_conn.rcv_nxt == plain_conn.rcv_nxt
    assert agg_conn._segs_since_ack == plain_conn._segs_since_ack


def test_ack_counter_carries_across_aggregates(sim):
    conn, t = make_established(sim, aggregation_aware=True)
    feed_aggregated(conn, 3, start_seq=1000)          # acks at frag 2, carry 1
    feed_aggregated(conn, 3, start_seq=1000 + 3 * MSS)  # acks at frags 1 and 3
    acks = [a for e in t.events for a in e.acks]
    assert acks == [1000 + 2 * MSS, 1000 + 4 * MSS, 1000 + 6 * MSS]


def test_cwnd_growth_matches_individual_acks(sim):
    """§3.4 case 1: send-side cwnd must grow per fragment ACK."""
    agg_conn, _ = make_established(sim, aggregation_aware=True)
    plain_conn, _ = make_established(sim, aggregation_aware=False)
    for conn in (agg_conn, plain_conn):
        conn.snd_nxt = 501 + 10 * MSS  # pretend data in flight
        conn.reno.cwnd = 10 * MSS

    acks = [501 + (i + 1) * MSS for i in range(6)]
    feed_aggregated(agg_conn, 6, acks=acks)
    for i, ack in enumerate(acks):
        plain_conn.on_segment(data_pkt(1000 + i * MSS, ack=ack))

    assert agg_conn.reno.cwnd == plain_conn.reno.cwnd
    assert agg_conn.snd_una == plain_conn.snd_una
    assert agg_conn.stats.frag_acks_processed == 6


def test_unaware_layer_undercounts_acks(sim):
    """Without §3.4, one aggregated packet = one ACK worth of cwnd growth —
    the bug the modified TCP layer exists to fix."""
    aware, _ = make_established(sim, aggregation_aware=True)
    unaware, _ = make_established(sim, aggregation_aware=False)
    for conn in (aware, unaware):
        conn.snd_nxt = 501 + 10 * MSS
        conn.reno.cwnd = 10 * MSS

    acks = [501 + (i + 1) * MSS for i in range(6)]
    feed_aggregated(aware, 6, acks=acks)
    feed_aggregated(unaware, 6, acks=acks)  # metadata present but ignored
    assert aware.reno.cwnd > unaware.reno.cwnd
    assert aware.reno.cwnd - unaware.reno.cwnd == 5 * MSS  # 6 acks vs 1


def test_delivered_bytes_equal_for_aggregated_and_plain(sim):
    agg_conn, _ = make_established(sim, aggregation_aware=True)
    plain_conn, _ = make_established(sim, aggregation_aware=False)
    feed_aggregated(agg_conn, 5)
    for i in range(5):
        plain_conn.on_segment(data_pkt(1000 + i * MSS))
    assert agg_conn.stats.bytes_delivered == plain_conn.stats.bytes_delivered == 5 * MSS


@given(st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=8))
def test_ack_equivalence_property(frag_counts):
    """For ANY partition of a packet train into aggregates, the generated
    ACK numbers equal the unaggregated receiver's."""
    sim = Simulator()
    agg_conn, agg_t = make_established(sim, aggregation_aware=True)
    plain_conn, plain_t = make_established(sim, aggregation_aware=False)

    seq = 1000
    for count in frag_counts:
        feed_aggregated(agg_conn, count, start_seq=seq)
        seq += count * MSS
    seq = 1000
    total = sum(frag_counts)
    for i in range(total):
        plain_conn.on_segment(data_pkt(seq))
        seq += MSS

    agg_acks = [a for e in agg_t.events for a in e.acks]
    plain_acks = [a for e in plain_t.events for a in e.acks]
    assert agg_acks == plain_acks
    assert agg_conn.rcv_nxt == plain_conn.rcv_nxt
