"""Unit tests for individual Xen pipeline components."""

import dataclasses

import pytest

from repro.buffers.pool import BufferPool
from repro.core.config import OptimizationConfig
from repro.cpu.categories import Category
from repro.cpu.cpu import Cpu
from repro.cpu.view import CpuView
from repro.host.configs import xen_config
from repro.net.addresses import ip_from_str
from repro.net.packet import make_data_segment
from repro.sim.engine import Simulator
from repro.xen.costs import XenCostModel
from repro.xen.driver_domain import DriverDomain

CLIENT = ip_from_str("10.0.1.1")
SERVER = ip_from_str("10.0.0.1")


class _GuestKernelStub:
    """Records delivered skbs; charges nothing."""

    def __init__(self, cpu):
        self.cpu = cpu
        self.delivered = []
        self.drains = 0

    def deliver_host_skb(self, skb):
        self.delivered.append(skb)
        skb.free()

    def app_drain(self):
        self.drains += 1


def make_dd(sim):
    cpu = Cpu(sim)
    dd_view = CpuView(cpu, name="dd")
    guest_pool = BufferPool("guest")
    guest = _GuestKernelStub(CpuView(cpu, name="guest"))
    dd = DriverDomain(dd_view, XenCostModel(), guest, guest_pool)
    return dd, cpu, guest, guest_pool


def _skb(pool, n_frags=1):
    pkt = make_data_segment(CLIENT, SERVER, 10000, 5001, seq=0, ack=0,
                            payload_len=1448, timestamp=(1, 0))
    pkt.csum_verified = True
    skb = pool.alloc(pkt)
    for i in range(1, n_frags):
        skb.frags.append(make_data_segment(CLIENT, SERVER, 10000, 5001,
                                           seq=i * 1448, ack=0, payload_len=1448,
                                           timestamp=(1, 0)))
    return skb


def test_forward_batches_until_flush(sim):
    dd, cpu, guest, guest_pool = make_dd(sim)
    dd_pool = BufferPool("dd")
    dd.forward_rx(_skb(dd_pool))
    dd.forward_rx(_skb(dd_pool))
    assert guest.delivered == []  # held in the I/O channel batch
    dd.flush_to_guest()
    assert len(guest.delivered) == 2
    assert guest.drains == 1
    dd_pool.assert_balanced()
    guest_pool.assert_balanced()


def test_flush_empty_batch_is_noop(sim):
    dd, cpu, guest, _ = make_dd(sim)
    busy = cpu.busy_cycles
    dd.flush_to_guest()
    assert cpu.busy_cycles == busy
    assert guest.drains == 0


def test_netback_cost_scales_with_fragments(sim):
    dd, cpu, guest, _ = make_dd(sim)
    dd_pool = BufferPool("dd")
    dd.forward_rx(_skb(dd_pool, n_frags=1))
    single = cpu.profiler.cycles[Category.NETBACK]
    dd.forward_rx(_skb(dd_pool, n_frags=5))
    five = cpu.profiler.cycles[Category.NETBACK] - single
    xc = dd.xen_costs
    assert single == pytest.approx(xc.netback_rx_base + xc.netback_per_frag)
    assert five == pytest.approx(xc.netback_rx_base + 5 * xc.netback_per_frag)
    dd.flush_to_guest()
    dd_pool.assert_balanced()


def test_grant_copy_charged_per_byte_with_multiplier(sim):
    dd, cpu, guest, _ = make_dd(sim)
    dd_pool = BufferPool("dd")
    dd.forward_rx(_skb(dd_pool, n_frags=2))
    dd.flush_to_guest()
    per_byte = cpu.profiler.cycles[Category.PER_BYTE]
    expected = dd.cpu.costs.copy_cycles(2 * 1448) * dd.xen_costs.grant_copy_multiplier
    assert per_byte == pytest.approx(expected)


def test_event_channel_cost_per_batch_not_per_packet(sim):
    dd, cpu, guest, _ = make_dd(sim)
    dd_pool = BufferPool("dd")
    for _ in range(4):
        dd.forward_rx(_skb(dd_pool))
    dd.flush_to_guest()
    xen_cycles = cpu.profiler.cycles[Category.XEN]
    xc = dd.xen_costs
    expected = (
        xc.xen_event_per_batch + xc.xen_domain_switch_per_batch
        + 4 * (xc.xen_grant_per_packet + xc.xen_grant_per_frag)
    )
    assert xen_cycles == pytest.approx(expected)


def test_reparenting_preserves_fragment_metadata(sim):
    dd, cpu, guest, guest_pool = make_dd(sim)
    dd_pool = BufferPool("dd")
    skb = _skb(dd_pool, n_frags=3)
    skb.frag_acks = [1, 2, 3]
    skb.frag_end_seqs = [10, 20, 30]
    skb.frag_windows = [100, 200, 300]
    dd.forward_rx(skb)
    dd.flush_to_guest()
    guest_skb = guest.delivered[0]
    assert guest_skb.frag_acks == [1, 2, 3]
    assert guest_skb.frag_end_seqs == [10, 20, 30]
    assert guest_skb.nr_segments == 3
    dd_pool.assert_balanced()


def test_xen_cost_model_guest_scale_excludes_copies():
    scale = XenCostModel().guest_scale
    assert scale[Category.PER_BYTE] == 1.0
    assert scale[Category.RX] > 1.0
    assert scale[Category.BUFFER] > 1.0
