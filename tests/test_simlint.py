"""Every simlint rule: fires on a bad fixture, stays quiet on a good one."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.simlint import lint_source
from repro.analysis.simlint.cli import main as simlint_main
from repro.analysis.simlint.rules import ALL_RULES, PROGRAM_RULES, RULES_BY_ID


def rules_fired(source: str, relname: str = "src/repro/some/module.py"):
    violations = lint_source(
        textwrap.dedent(source), path=relname, relname=relname
    )
    return [v.rule for v in violations], violations


def assert_fires(rule_id: str, source: str, **kwargs) -> None:
    fired, violations = rules_fired(source, **kwargs)
    assert rule_id in fired, f"{rule_id} did not fire; got {fired}"


def assert_clean(rule_id: str, source: str, **kwargs) -> None:
    fired, violations = rules_fired(source, **kwargs)
    assert rule_id not in fired, f"{rule_id} fired unexpectedly: {violations}"


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
class TestWallClock:
    def test_time_time_fires(self):
        assert_fires("wall-clock", """
            import time
            def f():
                return time.time()
        """)

    def test_perf_counter_fires(self):
        assert_fires("wall-clock", """
            import time
            def f():
                return time.perf_counter()
        """)

    def test_datetime_now_fires(self):
        assert_fires("wall-clock", """
            import datetime
            def f():
                return datetime.now()
        """)

    def test_from_import_of_clock_fires(self):
        assert_fires("wall-clock", "from time import perf_counter\n")

    def test_sim_clock_clean(self):
        assert_clean("wall-clock", """
            def f(sim):
                return sim.now
        """)

    def test_line_suppression(self):
        assert_clean("wall-clock", """
            import time
            def f():
                return time.time()  # simlint: allow(wall-clock) -- harness
        """)

    def test_file_suppression(self):
        assert_clean("wall-clock", """
            # simlint: file-allow(wall-clock) -- benchmarking module
            import time
            def f():
                return time.time() - time.perf_counter()
        """)

    def test_suppression_is_rule_specific(self):
        assert_fires("wall-clock", """
            import time
            def f():
                return time.time()  # simlint: allow(unseeded-random)
        """)


# ----------------------------------------------------------------------
# unseeded-random
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_import_fires(self):
        assert_fires("unseeded-random", "import random\n")

    def test_from_import_fires(self):
        assert_fires("unseeded-random", "from random import randint\n")

    def test_attribute_use_fires(self):
        assert_fires("unseeded-random", """
            def f(random):
                return random.random()
        """)

    def test_rng_module_exempt(self):
        assert_clean(
            "unseeded-random",
            "import random\n",
            relname="src/repro/sim/rng.py",
        )

    def test_seeded_rng_clean(self):
        assert_clean("unseeded-random", """
            from repro.sim.rng import SeededRng
            def f(seed):
                return SeededRng(seed, "traffic").uniform(0, 1)
        """)


# ----------------------------------------------------------------------
# import-time-schedule
# ----------------------------------------------------------------------
class TestImportTimeSchedule:
    def test_module_scope_schedule_fires(self):
        assert_fires("import-time-schedule", """
            from repro.sim.engine import Simulator
            sim = Simulator()
            sim.schedule(1.0, print)
        """)

    def test_class_body_fires(self):
        assert_fires("import-time-schedule", """
            class Rig:
                token = sim.at(0.0, print)
        """)

    def test_inside_function_clean(self):
        assert_clean("import-time-schedule", """
            def setup(sim):
                sim.schedule(1.0, print)
                sim.post(2.0, print)
        """)


# ----------------------------------------------------------------------
# raw-seq-compare
# ----------------------------------------------------------------------
class TestRawSeqCompare:
    def test_ordering_on_seq_field_fires(self):
        assert_fires("raw-seq-compare", """
            def f(self, pkt):
                if pkt.tcp.seq < self.rcv_nxt:
                    return True
        """)

    def test_ordering_on_named_state_fires(self):
        assert_fires("raw-seq-compare", """
            def f(self, ack):
                return ack > self.snd_una
        """)

    def test_equality_allowed(self):
        assert_clean("raw-seq-compare", """
            def f(self, pkt):
                return pkt.tcp.seq == self.rcv_nxt
        """)

    def test_masked_difference_idiom_clean(self):
        assert_clean("raw-seq-compare", """
            def f(self, pkt):
                return ((pkt.tcp.seq - self.rcv_nxt) & 0xFFFFFFFF) < 0x80000000
        """)

    def test_seqmath_module_exempt(self):
        assert_clean(
            "raw-seq-compare",
            """
            def seq_lt(a, b):
                return a != b and ((b - a) & 0xFFFFFFFF) < 0x80000000
            def helper(seq, rcv_nxt):
                return seq < rcv_nxt
            """,
            relname="src/repro/tcp/seqmath.py",
        )

    def test_innocent_names_clean(self):
        # `serial`, loop counters etc. must not trip the generic detector.
        assert_clean("raw-seq-compare", """
            def f(self, serial, count):
                return serial < self._seq_limit and count < 3
        """)


# ----------------------------------------------------------------------
# raw-seq-arith
# ----------------------------------------------------------------------
class TestRawSeqArith:
    def test_unmasked_add_fires(self):
        assert_fires("raw-seq-arith", """
            def f(self, length):
                nxt = self.rcv_nxt + length
                return nxt
        """)

    def test_augassign_fires(self):
        assert_fires("raw-seq-arith", """
            def f(self):
                self._iss += 64000
        """)

    def test_masked_add_clean(self):
        assert_clean("raw-seq-arith", """
            def f(self, length):
                return (self.rcv_nxt + length) & 0xFFFFFFFF
        """)

    def test_named_mask_clean(self):
        assert_clean("raw-seq-arith", """
            _SEQ_MASK = 0xFFFFFFFF
            def f(self, length):
                return (self.rcv_nxt + length) & _SEQ_MASK
        """)

    def test_seqmath_exempt(self):
        assert_clean(
            "raw-seq-arith",
            """
            def seq_add(seq, n):
                return (seq + n) & 0xFFFFFFFF
            def seq_diff_unmasked(seg_seq, other):
                return seg_seq - other
            """,
            relname="src/repro/tcp/seqmath.py",
        )

    def test_non_seq_arith_clean(self):
        assert_clean("raw-seq-arith", """
            def f(self, cycles):
                self.total += cycles
                return self.busy_until + cycles
        """)


# ----------------------------------------------------------------------
# packet-mutation
# ----------------------------------------------------------------------
class TestPacketMutation:
    def test_tcp_field_write_fires(self):
        assert_fires("packet-mutation", """
            def f(pkt, ack):
                pkt.tcp.ack = ack
        """)

    def test_nested_header_write_fires(self):
        assert_fires("packet-mutation", """
            def f(skb):
                skb.head.ip.total_length = 40
        """)

    def test_options_write_fires(self):
        assert_fires("packet-mutation", """
            def f(head, ts):
                head.tcp.options.timestamp = ts
        """)

    def test_payload_len_write_fires(self):
        assert_fires("packet-mutation", """
            def f(pkt):
                pkt.payload_len = 0
        """)

    def test_augassign_fires(self):
        assert_fires("packet-mutation", """
            def f(pkt, n):
                pkt.ip.total_length += n
        """)

    def test_net_modules_exempt(self):
        assert_clean(
            "packet-mutation",
            """
            def absorb(self, pkt):
                self.tcp.ack = pkt.tcp.ack
            """,
            relname="src/repro/net/packet.py",
        )

    def test_write_through_api_clean(self):
        assert_clean("packet-mutation", """
            def f(pkt, ack):
                pkt.rewrite_ack_incremental(ack)
                pkt.refresh_lengths()
        """)

    def test_self_payload_clean(self):
        assert_clean("packet-mutation", """
            class Thing:
                def reset(self):
                    self.payload = None
        """)


# ----------------------------------------------------------------------
# float-eq
# ----------------------------------------------------------------------
class TestFloatEq:
    def test_busy_until_eq_fires(self):
        assert_fires("float-eq", """
            def f(cpu):
                return cpu.busy_until == 3.0
        """)

    def test_cycles_suffix_neq_fires(self):
        assert_fires("float-eq", """
            def f(a, drain_cycles):
                return drain_cycles != a
        """)

    def test_now_eq_fires(self):
        assert_fires("float-eq", """
            def f(sim, t):
                return sim.now == t
        """)

    def test_ordering_clean(self):
        assert_clean("float-eq", """
            def f(cpu, t):
                return cpu.busy_until <= t or cpu.busy_until > 0
        """)

    def test_none_sentinel_clean(self):
        assert_clean("float-eq", """
            def f(self):
                return self.busy_until == None
        """)

    def test_generic_float_clean(self):
        assert_clean("float-eq", """
            def f(v):
                return v == 0.0
        """)


# ----------------------------------------------------------------------
# unpicklable-worker
# ----------------------------------------------------------------------
class TestUnpicklableWorker:
    def test_lambda_fires(self):
        assert_fires("unpicklable-worker", """
            from repro.parallel import run_points
            def f(points):
                return run_points(lambda p: p * 2, points, jobs=4)
        """)

    def test_nested_function_fires(self):
        assert_fires("unpicklable-worker", """
            from repro.parallel import run_points
            def f(points, scale):
                def worker(p):
                    return p * scale
                return run_points(worker, points, jobs=4)
        """)

    def test_bound_method_fires(self):
        assert_fires("unpicklable-worker", """
            class Sweep:
                def run(self, points):
                    from repro.parallel import run_points
                    return run_points(self.worker, points, jobs=4)
        """)

    def test_module_level_function_clean(self):
        assert_clean("unpicklable-worker", """
            from repro.parallel import run_points
            def worker(p):
                return p * 2
            def f(points):
                return run_points(worker, points, jobs=4)
        """)

    def test_partial_of_lambda_fires(self):
        assert_fires("unpicklable-worker", """
            import functools
            from repro.parallel import run_points
            def f(points):
                return run_points(functools.partial(lambda s, p: p * s, 2), points)
        """)

    def test_keyword_worker_fires(self):
        assert_fires("unpicklable-worker", """
            from repro.parallel import run_points
            def f(points):
                return run_points(points=points, worker=lambda p: p)
        """)


# ----------------------------------------------------------------------
# hot-path-io
# ----------------------------------------------------------------------
class TestHotPathIo:
    def test_print_fires(self):
        assert_fires("hot-path-io", """
            def deliver(self, skb):
                print("got", skb)
        """)

    def test_import_logging_fires(self):
        assert_fires("hot-path-io", "import logging\n")

    def test_from_logging_fires(self):
        assert_fires("hot-path-io", "from logging import getLogger\n")

    def test_logging_attribute_fires(self):
        assert_fires("hot-path-io", """
            def f(logging):
                logging.info("x")
        """)

    def test_obs_tracer_call_clean(self):
        # The blessed alternative — trace events through repro.obs — is quiet.
        assert_clean("hot-path-io", """
            def f(self, tr, now):
                if tr is not None:
                    tr.event("tcp.rx", now)
        """)

    def test_obs_package_exempt(self):
        assert_clean(
            "hot-path-io",
            "def dash(s):\n    print(s.render_dashboard())\n",
            relname="src/repro/obs/sampler.py",
        )

    def test_analysis_package_exempt(self):
        assert_clean(
            "hot-path-io",
            "def report(text):\n    print(text)\n",
            relname="src/repro/analysis/reporting.py",
        )

    def test_cli_exempt(self):
        assert_clean(
            "hot-path-io",
            "def main():\n    print('rows')\n",
            relname="src/repro/cli.py",
        )

    def test_line_suppression(self):
        assert_clean("hot-path-io", """
            def f(self):
                print("boot banner")  # simlint: allow(hot-path-io) -- intended
        """)


# ----------------------------------------------------------------------
# framework behaviour
# ----------------------------------------------------------------------
class TestFramework:
    def test_registry_ids_unique_and_expected(self):
        ids = {rule.id for rule in ALL_RULES}
        assert ids == {
            "wall-clock",
            "unseeded-random",
            "import-time-schedule",
            "raw-seq-compare",
            "raw-seq-arith",
            "packet-mutation",
            "float-eq",
            "unpicklable-worker",
            "hot-path-io",
            "unused-allow",
        }
        program_ids = {rule.id for rule in PROGRAM_RULES}
        assert program_ids == {"cross-cpu-write", "uncharged-cycles", "slab-escape"}
        assert set(RULES_BY_ID) == ids | program_ids

    def test_violation_carries_location_and_snippet(self):
        _, violations = rules_fired("""
            import time
            def f():
                return time.time()
        """)
        [v] = [v for v in violations if v.rule == "wall-clock"]
        assert v.line == 4
        assert "time.time()" in v.snippet
        assert "wall-clock" in v.format()

    def test_multi_rule_suppression_comment(self):
        assert_clean("float-eq", """
            def f(cpu, t):
                return cpu.busy_until == t  # simlint: allow(float-eq, wall-clock)
        """)


class TestCli:
    def test_list_rules_exit_zero(self, capsys):
        assert simlint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock" in out and "unpicklable-worker" in out

    def test_bad_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert simlint_main(["--no-cache", str(tmp_path)]) == 1
        assert "[wall-clock]" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def f(sim):\n    return sim.now\n")
        assert simlint_main(["--no-cache", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert simlint_main(["--no-cache", "--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["violations"][0]["rule"] == "unseeded-random"

    def test_select_subset(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nimport random\nt = time.time()\n")
        assert simlint_main(["--no-cache", "--select", "unseeded-random", str(bad)]) == 1
        assert (
            simlint_main(["--no-cache", "--select", "import-time-schedule", str(bad)])
            == 0
        )

    def test_unknown_rule_usage_error(self, tmp_path):
        assert simlint_main(["--select", "no-such-rule", str(tmp_path)]) == 2

    def test_no_paths_usage_error(self):
        assert simlint_main([]) == 2

    def test_repo_source_tree_is_clean(self):
        assert simlint_main(["--no-cache", "src/"]) == 0


# ----------------------------------------------------------------------
# unused-allow (stale suppressions)
# ----------------------------------------------------------------------
class TestUnusedAllow:
    def test_stale_line_allow_fires(self):
        assert_fires("unused-allow", """
            def f(sim):
                return sim.now  # simlint: allow(wall-clock) -- long since fixed
        """)

    def test_stale_file_allow_fires(self):
        assert_fires("unused-allow", """
            # simlint: file-allow(wall-clock) -- module no longer reads clocks
            def f(sim):
                return sim.now
        """)

    def test_used_allow_clean(self):
        assert_clean("unused-allow", """
            import time
            def f():
                return time.time()  # simlint: allow(wall-clock) -- harness
        """)

    def test_unknown_rule_id_is_stale(self):
        fired, violations = rules_fired("""
            def f(sim):
                return sim.now  # simlint: allow(no-such-rule)
        """)
        assert "unused-allow" in fired
        [v] = [v for v in violations if v.rule == "unused-allow"]
        assert "no-such-rule" in v.message

    def test_not_judged_when_rule_not_running(self):
        # wall-clock is known but not selected: the pass can't tell whether
        # the allow would have masked something, so it stays quiet.
        source = textwrap.dedent("""
            def f(sim):
                return sim.now  # simlint: allow(wall-clock)
        """)
        rules = [RULES_BY_ID["unseeded-random"], RULES_BY_ID["unused-allow"]]
        violations = lint_source(source, rules=rules)
        assert [v.rule for v in violations] == []

    def test_docstring_allow_is_inert(self):
        # A quoted allow marker (docs showing the syntax) neither
        # suppresses a real finding nor registers as a stale allow.
        fired, _ = rules_fired('''
            import time
            def f():
                """Example: x = time.time()  # simlint: allow(wall-clock)"""
                return time.time()
        ''')
        assert "wall-clock" in fired
        assert "unused-allow" not in fired

    def test_stale_allow_can_itself_be_allowed(self):
        assert_clean("unused-allow", """
            def f(sim):
                return sim.now  # simlint: allow(unused-allow, wall-clock) -- keep
        """)

    def test_per_rule_staleness_in_multi_rule_allow(self):
        # One comment, one used id, one stale id: only the stale one fires.
        fired, violations = rules_fired("""
            import time
            def f():
                return time.time()  # simlint: allow(wall-clock, float-eq)
        """)
        stale = [v for v in violations if v.rule == "unused-allow"]
        assert len(stale) == 1
        assert "float-eq" in stale[0].message


# ----------------------------------------------------------------------
# content-hash result cache
# ----------------------------------------------------------------------
class TestLintCache:
    def _write_tree(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import time\n"
            "def f():\n"
            "    return time.time()  # simlint: allow(float-eq)\n"
        )
        (tmp_path / "good.py").write_text("def f(sim):\n    return sim.now\n")

    def test_second_run_hits_and_matches(self, tmp_path):
        from repro.analysis.simlint.cache import LintCache
        from repro.analysis.simlint.runner import lint_paths

        self._write_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        first = lint_paths([str(tmp_path)], cache=LintCache(cache_path))
        warm = LintCache(cache_path)
        second = lint_paths([str(tmp_path)], cache=warm)
        assert [v.to_dict() for v in first] == [v.to_dict() for v in second]
        assert warm.hits >= 2  # both files served from cache
        # The stale float-eq allow is still judged from cached use-marks.
        assert any(v.rule == "unused-allow" for v in second)
        assert any(v.rule == "wall-clock" for v in second)

    def test_source_change_invalidates(self, tmp_path):
        from repro.analysis.simlint.cache import LintCache
        from repro.analysis.simlint.runner import lint_paths

        self._write_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        lint_paths([str(tmp_path)], cache=LintCache(cache_path))
        (tmp_path / "good.py").write_text("import random\n")
        warm = LintCache(cache_path)
        second = lint_paths([str(tmp_path)], cache=warm)
        assert warm.misses >= 1
        assert any(v.rule == "unseeded-random" for v in second)

    def test_whole_program_pass_is_cached(self, tmp_path):
        from repro.analysis.simlint.cache import LintCache
        from repro.analysis.simlint.runner import default_rules, lint_paths

        (tmp_path / "fix.py").write_text(
            "class D:\n"
            "    def kick(self):\n"
            "        self.cpu.submit(self._isr)\n"
            "    def _isr(self):\n"
            "        self.stats.runs = 1\n"
        )
        cache_path = str(tmp_path / "cache.json")
        rules = default_rules(whole_program=True)
        first = lint_paths([str(tmp_path)], rules=rules, cache=LintCache(cache_path))
        warm = LintCache(cache_path)
        second = lint_paths([str(tmp_path)], rules=rules, cache=warm)
        assert [v.to_dict() for v in first] == [v.to_dict() for v in second]
        assert any(v.rule == "uncharged-cycles" for v in second)
        assert warm.hits >= 2  # module entry + program entry

    def test_cli_cache_roundtrip(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        cache_path = str(tmp_path / "cache.json")
        argv = ["--cache-path", cache_path, str(bad)]
        assert simlint_main(argv) == 1
        assert simlint_main(argv) == 1  # served from cache, same verdict
        bad.write_text("def f(sim):\n    return sim.now\n")
        assert simlint_main(argv) == 0


def test_every_rule_has_a_firing_test():
    """Meta: the test suite covers each registered rule id (program rules
    fire in tests/test_simlint_program.py)."""
    covered = {
        "wall-clock",
        "unseeded-random",
        "import-time-schedule",
        "raw-seq-compare",
        "raw-seq-arith",
        "packet-mutation",
        "float-eq",
        "unpicklable-worker",
        "hot-path-io",
        "unused-allow",
        "cross-cpu-write",
        "uncharged-cycles",
        "slab-escape",
    }
    assert covered == set(RULES_BY_ID)
