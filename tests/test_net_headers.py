"""Serialization round-trips and semantics for Ethernet/IPv4/TCP headers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import ip_from_str, ip_to_str, mac_from_str, mac_to_str
from repro.net.ethernet import ETH_HEADER_LEN, EthernetHeader
from repro.net.ip import IP_DF, IP_MF, IPv4Header
from repro.net.tcp_header import TcpFlags, TcpHeader, TcpOptions


# ---------------------------------------------------------------- addresses
def test_ip_string_roundtrip():
    assert ip_to_str(ip_from_str("192.168.1.200")) == "192.168.1.200"


def test_ip_parse_rejects_bad_input():
    with pytest.raises(ValueError):
        ip_from_str("10.0.0")
    with pytest.raises(ValueError):
        ip_from_str("10.0.0.999")


def test_mac_string_roundtrip():
    assert mac_to_str(mac_from_str("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_ip_int_roundtrip(value):
    assert ip_from_str(ip_to_str(value)) == value


# ---------------------------------------------------------------- ethernet
def test_ethernet_roundtrip():
    hdr = EthernetHeader(dst_mac=0x112233445566, src_mac=0xAABBCCDDEEFF, ethertype=0x0800)
    assert EthernetHeader.unpack(hdr.pack()) == hdr
    assert len(hdr.pack()) == ETH_HEADER_LEN


def test_ethernet_truncated_rejected():
    with pytest.raises(ValueError):
        EthernetHeader.unpack(b"\x00" * 5)


# ---------------------------------------------------------------- ipv4
def test_ipv4_roundtrip_with_checksum():
    hdr = IPv4Header(src_ip=ip_from_str("10.0.0.1"), dst_ip=ip_from_str("10.0.0.2"), total_length=1500)
    packed = hdr.pack()
    parsed = IPv4Header.unpack(packed)
    assert parsed.src_ip == hdr.src_ip
    assert parsed.dst_ip == hdr.dst_ip
    assert parsed.total_length == 1500
    assert parsed.checksum_ok()


def test_ipv4_checksum_detects_corruption():
    hdr = IPv4Header(src_ip=1, dst_ip=2, total_length=100)
    hdr.refresh_checksum()
    assert hdr.checksum_ok()
    hdr.total_length = 101  # corrupt a field without refreshing
    assert not hdr.checksum_ok()


def test_ipv4_fragment_detection():
    assert not IPv4Header(frag=IP_DF).is_fragment
    assert IPv4Header(frag=IP_MF).is_fragment
    assert IPv4Header(frag=100).is_fragment  # nonzero offset


def test_ipv4_options_detection():
    assert not IPv4Header().has_options
    assert IPv4Header(options=b"\x94\x04\x00\x00").has_options


def test_ipv4_truncated_rejected():
    with pytest.raises(ValueError):
        IPv4Header.unpack(b"\x45" + b"\x00" * 10)


# ---------------------------------------------------------------- tcp
def test_tcp_roundtrip_basic():
    hdr = TcpHeader(src_port=5001, dst_port=80, seq=12345, ack=999, flags=TcpFlags.ACK | TcpFlags.PSH, window=4321)
    parsed = TcpHeader.unpack(hdr.pack())
    assert parsed.src_port == 5001
    assert parsed.dst_port == 80
    assert parsed.seq == 12345
    assert parsed.ack == 999
    assert parsed.flags == TcpFlags.ACK | TcpFlags.PSH
    assert parsed.window == 4321


def test_tcp_roundtrip_with_all_syn_options():
    options = TcpOptions(mss=1460, window_scale=7, sack_permitted=True, timestamp=(1000, 0))
    hdr = TcpHeader(flags=TcpFlags.SYN, options=options)
    parsed = TcpHeader.unpack(hdr.pack())
    assert parsed.options.mss == 1460
    assert parsed.options.window_scale == 7
    assert parsed.options.sack_permitted
    assert parsed.options.timestamp == (1000, 0)


def test_tcp_roundtrip_with_sack_blocks():
    options = TcpOptions(sack_blocks=[(100, 200), (400, 600)])
    parsed = TcpHeader.unpack(TcpHeader(options=options).pack())
    assert parsed.options.sack_blocks == [(100, 200), (400, 600)]


def test_tcp_header_len_includes_options():
    ts_only = TcpHeader(options=TcpOptions(timestamp=(1, 2)))
    assert ts_only.header_len == 32  # 20 + 12 (NOP NOP TS)
    assert TcpHeader().header_len == 20


def test_only_timestamp_detection():
    assert TcpOptions(timestamp=(1, 2)).only_timestamp()
    assert TcpOptions().only_timestamp()
    assert not TcpOptions(timestamp=(1, 2), sack_blocks=[(1, 2)]).only_timestamp()
    assert not TcpOptions(mss=1460).only_timestamp()
    assert not TcpOptions(sack_permitted=True).only_timestamp()


def test_tcp_checksum_roundtrip():
    hdr = TcpHeader(src_port=1, dst_port=2, seq=3, ack=4)
    payload = b"some tcp payload"
    csum = hdr.compute_checksum(ip_from_str("10.0.0.1"), ip_from_str("10.0.0.2"), payload)
    assert 0 <= csum <= 0xFFFF
    # Deterministic and sensitive to payload changes.
    assert csum == hdr.compute_checksum(ip_from_str("10.0.0.1"), ip_from_str("10.0.0.2"), payload)
    assert csum != hdr.compute_checksum(ip_from_str("10.0.0.1"), ip_from_str("10.0.0.2"), b"other payload!!!")


def test_tcp_truncated_rejected():
    with pytest.raises(ValueError):
        TcpHeader.unpack(b"\x00" * 10)


@given(
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=65535),
)
def test_tcp_roundtrip_property(port, seq, ack, window):
    hdr = TcpHeader(src_port=port, dst_port=65535 - port, seq=seq, ack=ack, window=window,
                    options=TcpOptions(timestamp=(seq, ack)))
    parsed = TcpHeader.unpack(hdr.pack())
    assert (parsed.src_port, parsed.seq, parsed.ack, parsed.window) == (port, seq, ack, window)
    assert parsed.options.timestamp == (seq, ack)
