"""Whole-program simlint: the ProgramIndex and the three ownership rules.

Module-rule fixtures live in tests/test_simlint.py; this file covers the
cross-module layer — symbol table / call graph construction, and firing
plus stand-down fixtures for ``cross-cpu-write``, ``uncharged-cycles``
and ``slab-escape``.
"""

from __future__ import annotations

import textwrap

from repro.analysis.simlint import lint_source
from repro.analysis.simlint.cli import main as simlint_main
from repro.analysis.simlint.core import ModuleContext
from repro.analysis.simlint.program import ProgramIndex, module_name_of
from repro.analysis.simlint.rules import PROGRAM_RULES
from repro.analysis.simlint.runner import default_rules, lint_paths

MQ_RELNAME = "src/repro/mq/fixture.py"


def program_fired(source: str, relname: str = MQ_RELNAME):
    violations = lint_source(
        textwrap.dedent(source),
        path=relname,
        relname=relname,
        rules=list(PROGRAM_RULES),
    )
    return [v.rule for v in violations], violations


def assert_fires(rule_id: str, source: str, **kwargs) -> None:
    fired, violations = program_fired(source, **kwargs)
    assert rule_id in fired, f"{rule_id} did not fire; got {fired}"


def assert_clean(rule_id: str, source: str, **kwargs) -> None:
    fired, violations = program_fired(source, **kwargs)
    assert rule_id not in fired, f"{rule_id} fired unexpectedly: {violations}"


def make_ctx(relname: str, source: str) -> ModuleContext:
    return ModuleContext(
        path=relname, source=textwrap.dedent(source), relname=relname
    )


# ----------------------------------------------------------------------
# ProgramIndex mechanics
# ----------------------------------------------------------------------
class TestModuleNameOf:
    def test_src_tree(self):
        assert module_name_of("src/repro/mq/kernel.py") == "repro.mq.kernel"

    def test_package_init(self):
        assert module_name_of("src/repro/nic/__init__.py") == "repro.nic"

    def test_outside_repro(self):
        assert module_name_of("scratch/fix.py") == "scratch.fix"


class TestProgramIndex:
    def _two_module_index(self) -> ProgramIndex:
        kernel = make_ctx(
            "src/repro/mq/fakekernel.py",
            """
            class BaseKernel:
                def deliver(self, sock):
                    self.charge()
                def charge(self):
                    self.cpu.consume(10, "proto")

            class FastKernel(BaseKernel):
                def charge(self):
                    self.cpu.consume(1, "proto")
            """,
        )
        driver = make_ctx(
            "src/repro/driver/fakedriver.py",
            """
            class FakeDriver:
                def isr(self):
                    self.kernel.deliver(self.sock)
            """,
        )
        return ProgramIndex([kernel, driver])

    def test_symbols_indexed(self):
        index = self._two_module_index()
        assert "repro.mq.fakekernel.BaseKernel.deliver" in index.functions
        assert "repro.driver.fakedriver.FakeDriver.isr" in index.functions
        assert {c.name for c in index.classes.values()} == {
            "BaseKernel",
            "FastKernel",
            "FakeDriver",
        }

    def test_self_call_resolves_through_mro_and_overrides(self):
        index = self._two_module_index()
        deliver = index.functions["repro.mq.fakekernel.BaseKernel.deliver"]
        resolved = {f.qualname for f in index.resolve_self_call(deliver, "charge")}
        # Base method plus the subclass override: ``self`` may be either.
        assert resolved == {
            "repro.mq.fakekernel.BaseKernel.charge",
            "repro.mq.fakekernel.FastKernel.charge",
        }

    def test_duck_call_crosses_modules(self):
        index = self._two_module_index()
        isr = index.functions["repro.driver.fakedriver.FakeDriver.isr"]
        assert "repro.mq.fakekernel.BaseKernel.deliver" in isr.edges

    def test_reachability_includes_transitive_callees(self):
        index = self._two_module_index()
        reached = {
            f.qualname
            for f in index.reachable(["repro.driver.fakedriver.FakeDriver.isr"])
        }
        assert "repro.mq.fakekernel.BaseKernel.charge" in reached
        assert "repro.mq.fakekernel.FastKernel.charge" in reached

    def test_consume_flag_extracted(self):
        index = self._two_module_index()
        charge = index.functions["repro.mq.fakekernel.BaseKernel.charge"]
        assert charge.calls_consume

    def test_unresolved_method_call_marks_caller(self):
        ctx = make_ctx(
            "src/repro/mq/fakekernel.py",
            """
            class K:
                def run(self):
                    self.mystery_trampoline()
            """,
        )
        index = ProgramIndex([ctx])
        assert index.functions["repro.mq.fakekernel.K.run"].unresolved_calls

    def test_functions_in_filters_by_path(self):
        index = self._two_module_index()
        mq = {f.qualname for f in index.functions_in("/mq/")}
        assert all(q.startswith("repro.mq.") for q in mq)
        assert mq  # non-empty


# ----------------------------------------------------------------------
# cross-cpu-write
# ----------------------------------------------------------------------
CROSS_CPU_BAD = """
    class SoftirqSide:
        def softirq_rx(self):
            self.kernel.enter_cpu(0)
            self.kernel.deliver(self.sock)

    class AppSide:
        def app_drain(self):
            self.kernel.enter_cpu(1)
            self.kernel.deliver(self.sock)

    class MqKernel:
        def deliver(self, sock):
            sock.bytes_ready = 1
"""


class TestCrossCpuWrite:
    def test_shared_write_without_charge_fires(self):
        fired, violations = program_fired(CROSS_CPU_BAD)
        assert "cross-cpu-write" in fired
        [v] = [v for v in violations if v.rule == "cross-cpu-write"]
        assert "sock.bytes_ready" in v.message
        assert "CrossCpuCostModel" in v.message

    def test_charged_write_clean(self):
        assert_clean("cross-cpu-write", """
            class SoftirqSide:
                def softirq_rx(self):
                    self.kernel.enter_cpu(0)
                    self.kernel.deliver(self.sock)

            class AppSide:
                def app_drain(self):
                    self.kernel.enter_cpu(1)
                    self.kernel.deliver(self.sock)

            class MqKernel:
                def deliver(self, sock):
                    self.cpu.consume(self.cross.bounce_cycles(), "xcpu")
                    sock.bytes_ready = 1
        """)

    def test_single_context_clean(self):
        # Only the softirq side reaches deliver: one CPU context, no bounce.
        assert_clean("cross-cpu-write", """
            class SoftirqSide:
                def softirq_rx(self):
                    self.kernel.enter_cpu(0)
                    self.kernel.deliver(self.sock)

            class MqKernel:
                def deliver(self, sock):
                    sock.bytes_ready = 1
        """)

    def test_fresh_object_write_clean(self):
        # Construction-time writes establish ownership, not a race.
        assert_clean("cross-cpu-write", """
            class SoftirqSide:
                def softirq_rx(self):
                    self.kernel.enter_cpu(0)
                    self.kernel.accept()

            class AppSide:
                def app_drain(self):
                    self.kernel.enter_cpu(1)
                    self.kernel.accept()

            class MqKernel:
                def accept(self):
                    sock = Socket()
                    sock.app_cpu_index = 0
                    return sock

            class Socket:
                def __init__(self):
                    self.app_cpu_index = None
        """)

    def test_outside_mq_exempt(self):
        # Same shape, but not under mq/: the rule only patrols mq/.
        assert_clean(
            "cross-cpu-write",
            CROSS_CPU_BAD,
            relname="src/repro/analysis/fixture.py",
        )

    def test_line_suppression_applies(self):
        assert_clean("cross-cpu-write", """
            class SoftirqSide:
                def softirq_rx(self):
                    self.kernel.enter_cpu(0)
                    self.kernel.deliver(self.sock)

            class AppSide:
                def app_drain(self):
                    self.kernel.enter_cpu(1)
                    self.kernel.deliver(self.sock)

            class MqKernel:
                def deliver(self, sock):
                    sock.bytes_ready = 1  # simlint: allow(cross-cpu-write) -- charged by caller
        """)


# ----------------------------------------------------------------------
# uncharged-cycles
# ----------------------------------------------------------------------
class TestUnchargedCycles:
    def test_submitted_isr_without_consume_fires(self):
        fired, violations = program_fired("""
            class Driver:
                def kick(self):
                    self.cpu.submit(self._isr)
                def _isr(self):
                    self.stats.drops = 1
        """)
        assert "uncharged-cycles" in fired
        [v] = [v for v in violations if v.rule == "uncharged-cycles"]
        assert "_isr" in v.message

    def test_isr_reaching_consume_clean(self):
        assert_clean("uncharged-cycles", """
            class Driver:
                def kick(self):
                    self.cpu.submit(self._isr)
                def _isr(self):
                    self.stats.drops = 1
                    self.cpu.consume(100, "irq")
        """)

    def test_consume_via_callee_clean(self):
        assert_clean("uncharged-cycles", """
            class Driver:
                def kick(self):
                    self.cpu.submit(self._isr)
                def _isr(self):
                    self.stats.drops = 1
                    self._charge()
                def _charge(self):
                    self.cpu.consume(100, "irq")
        """)

    def test_softirq_body_fires(self):
        assert_fires("uncharged-cycles", """
            class Kernel:
                def softirq_aggregated(self):
                    self.backlog.append(1)
        """)

    def test_pure_handler_clean(self):
        # Mutates nothing: pure bookkeeping no-op, nothing to charge.
        assert_clean("uncharged-cycles", """
            class Driver:
                def kick(self):
                    self.cpu.submit(self._isr)
                def _isr(self):
                    return None
        """)

    def test_unresolved_callee_stands_down(self):
        # ``self.fn()`` may charge cycles somewhere we can't see: silence.
        assert_clean("uncharged-cycles", """
            class Driver:
                def kick(self):
                    self.cpu.submit(self._isr)
                def _isr(self):
                    self.stats.drops = 1
                    self.dynamic_trampoline()
        """)


# ----------------------------------------------------------------------
# slab-escape
# ----------------------------------------------------------------------
class TestSlabEscape:
    def test_use_after_release_fires(self):
        fired, violations = program_fired("""
            class Demux:
                def drop(self, pkt):
                    self.packet_slab.release(pkt)
                    return pkt.wire_len
        """)
        assert "slab-escape" in fired
        [v] = [v for v in violations if v.rule == "slab-escape"]
        assert "recycled" in v.message

    def test_release_loop_idiom_clean(self):
        assert_clean("slab-escape", """
            class Demux:
                def drop_all(self, pkts):
                    for pkt in pkts:
                        self.packet_slab.release(pkt)
        """)

    def test_rebinding_after_release_clean(self):
        assert_clean("slab-escape", """
            class Demux:
                def recycle(self, pkt):
                    self.packet_slab.release(pkt)
                    pkt = self.packet_slab.acquire()
                    return pkt.wire_len
        """)

    def test_use_before_release_clean(self):
        assert_clean("slab-escape", """
            class Demux:
                def drop(self, pkt):
                    size = pkt.wire_len
                    self.packet_slab.release(pkt)
                    return size
        """)

    def test_non_slab_release_ignored(self):
        assert_clean("slab-escape", """
            class Port:
                def unlock(self, lock):
                    self.lock_mgr.release(lock)
                    return lock.owner
        """)

    def test_bare_slab_receiver_fires(self):
        assert_fires("slab-escape", """
            def free(slab, pkt):
                slab.release(pkt)
                return pkt.payload_len
        """)


# ----------------------------------------------------------------------
# the real tree, whole-program
# ----------------------------------------------------------------------
class TestWholeProgramOnRepo:
    def test_src_repro_is_clean_whole_program(self):
        violations = lint_paths(
            ["src/repro"], rules=default_rules(whole_program=True)
        )
        assert violations == [], [v.format() for v in violations]

    def test_cli_whole_program_exit_zero(self):
        assert (
            simlint_main(["--no-cache", "--whole-program", "src/repro"]) == 0
        )
