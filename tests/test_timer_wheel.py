"""Tests for the hierarchical timer wheel and its engine integration.

The contract under test: with the wheel enabled the engine fires the exact
same event sequence — times, order, everything — as the heap-only engine;
the wheel only changes where not-yet-due entries live and what a cancel
costs.  The randomized differential test at the bottom drives both engines
through an identical schedule/cancel script and compares full traces.
"""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.timers import (
    _HORIZON_TICKS,
    SLOTS,
    TICK_S,
    HierarchicalTimerWheel,
    tick_of,
)

#: Past the nearline (8 ticks): schedules at this delay park in the wheel.
MID_FUTURE = 200 * TICK_S
#: Past the level-2 horizon: schedules stay in the overflow heap.
BEYOND_HORIZON = (_HORIZON_TICKS + 100) * TICK_S


def conservation_holds(sim):
    wheel = sim.wheel
    wheel_count = wheel.count if wheel is not None else 0
    return sim._pending + sim._cancelled == len(sim._heap) + wheel_count


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------

def test_mid_future_event_parks_in_wheel_and_fires_exactly():
    sim = Simulator(use_wheel=True)
    fired = []
    ev = sim.schedule(MID_FUTURE, lambda: fired.append(sim.now))
    assert ev.in_wheel
    assert sim._heap == []
    assert sim.wheel.count == 1
    sim.run()
    assert fired == [MID_FUTURE]
    assert sim.wheel.count == 0
    assert conservation_holds(sim)


def test_far_future_beyond_horizon_stays_in_heap_and_fires():
    sim = Simulator(use_wheel=True)
    fired = []
    ev = sim.schedule(BEYOND_HORIZON, lambda: fired.append(sim.now))
    assert not ev.in_wheel
    assert len(sim._heap) == 1
    assert sim.wheel.count == 0
    sim.run()
    assert fired == [BEYOND_HORIZON]
    assert conservation_holds(sim)


def test_near_future_event_skips_wheel():
    """Times within the nearline go straight to the heap — the wheel cannot
    order within the current tick, and near events dominate real traffic."""
    sim = Simulator(use_wheel=True)
    ev = sim.schedule(TICK_S, lambda: None)
    assert not ev.in_wheel
    assert len(sim._heap) == 1


def test_inline_insert_matches_try_insert_reference():
    """``Simulator.at`` mirrors ``HierarchicalTimerWheel.try_insert``
    verbatim for speed; the two must always agree on wheel-vs-heap
    placement and on the live count."""
    rng = random.Random(20260808)
    for _ in range(500):
        t = rng.choice([
            rng.uniform(0.0, 8 * TICK_S),            # near: heap
            rng.uniform(8 * TICK_S, SLOTS * TICK_S),  # level 0
            rng.uniform(SLOTS * TICK_S, SLOTS * SLOTS * TICK_S),  # level 1
            rng.uniform(0.0, (_HORIZON_TICKS + 1000) * TICK_S),   # anywhere
        ])
        sim = Simulator(use_wheel=True)
        ev = sim.at(t, lambda: None)
        reference = HierarchicalTimerWheel()
        accepted = reference.try_insert((t, 0, None, (), None), now=0.0)
        in_wheel_by_inline = ev.in_wheel
        # The engine additionally keeps nearline times out of the wheel;
        # the reference has no nearline, so only one direction must match.
        if t >= 8 * TICK_S:
            assert in_wheel_by_inline == accepted, t
        else:
            assert not in_wheel_by_inline, t
        assert sim.wheel.count == (1 if in_wheel_by_inline else 0)


# ----------------------------------------------------------------------
# cancellation across tiers
# ----------------------------------------------------------------------

def test_wheel_cancel_never_reaches_heap():
    sim = Simulator(use_wheel=True)
    fired = []
    ev = sim.schedule(MID_FUTURE, lambda: fired.append("no"))
    ev.cancel()
    assert sim.wheel.count == 0
    assert sim.wheel.cancelled_in_wheel == 1
    # A wheel cancel must not be double-counted into the heap's lazy
    # cancellation bookkeeping (that would poison compaction thresholds).
    assert sim._cancelled == 0
    assert conservation_holds(sim)
    sim.run(until=2 * MID_FUTURE)
    assert fired == []
    # With nothing live, advance never runs: the zombie stays parked and
    # dead in its bucket (cheapest possible cancel), never heap-pushed.
    assert sim.wheel.flushed == 0
    assert sim.wheel.resident_live() == 0
    assert conservation_holds(sim)


def test_cancelled_zombie_purged_when_bucket_flushes():
    """A cancelled wheel entry is dropped the first time its bucket is
    walked — it must not be double-counted (count already dropped at
    cancel time) nor delivered."""
    sim = Simulator(use_wheel=True)
    fired = []
    sim.schedule(MID_FUTURE, fired.append, "dead").cancel()
    sim.schedule(MID_FUTURE, fired.append, "live")  # same tick, same bucket
    assert sim.wheel.count == 1
    sim.run()
    assert fired == ["live"]
    assert sim.wheel.purged == 1
    assert sim.wheel.flushed == 1
    assert conservation_holds(sim)


def test_cancel_then_rearm():
    sim = Simulator(use_wheel=True)
    fired = []
    first = sim.schedule(MID_FUTURE, lambda: fired.append("first"))
    first.cancel()
    first.cancel()  # idempotent
    second = sim.schedule(MID_FUTURE, lambda: fired.append("second"))
    assert second.in_wheel
    assert sim.wheel.count == 1
    sim.run()
    assert fired == ["second"]
    assert conservation_holds(sim)


def test_heap_compaction_leaves_wheel_entries_alone():
    """Heap compaction (lazy-cancel GC) and the wheel are separate tiers:
    compacting the heap must not disturb wheel residents or the cross-tier
    conservation invariant."""
    sim = Simulator(use_wheel=True)
    fired = []
    for i in range(10):
        sim.schedule(MID_FUTURE + i * TICK_S, fired.append, i)
    assert sim.wheel.count == 10
    # Near-term heap entries, most cancelled -> triggers compaction.
    handles = [sim.schedule(i * 1e-6, lambda: None) for i in range(200)]
    for h in handles[:150]:
        h.cancel()
    # Compaction ran at least once: the heap shed cancelled entries and
    # the lazy counter was reset below the cancel total.
    assert len(sim._heap) < 200
    assert sim._cancelled < 150
    assert sim.wheel.count == 10
    assert conservation_holds(sim)
    sim.run()
    assert fired == list(range(10))


# ----------------------------------------------------------------------
# ordering
# ----------------------------------------------------------------------

def test_many_same_tick_timers_fire_in_schedule_order():
    sim = Simulator(use_wheel=True)
    t = MID_FUTURE
    fired = []
    for i in range(100):
        ev = sim.at(t, fired.append, i)
        assert ev.in_wheel
    sim.run()
    assert fired == list(range(100))
    assert sim.now == t


def test_wheel_and_heap_events_interleave_in_time_order():
    sim = Simulator(use_wheel=True)
    fired = []
    sim.at(BEYOND_HORIZON, fired.append, "overflow")      # heap tier
    sim.at(MID_FUTURE, fired.append, "wheel")             # wheel tier
    sim.at(TICK_S / 2, fired.append, "near")              # heap, near
    sim.at(SLOTS * 4 * TICK_S, fired.append, "level1")    # wheel, level 1
    sim.run()
    assert fired == ["near", "wheel", "level1", "overflow"]


# ----------------------------------------------------------------------
# run-loop regressions
# ----------------------------------------------------------------------

def test_heap_only_run_drains_without_wheel():
    """Regression: ``run(until=None)`` on a heap-only engine used to fall
    into the wheel-refill path (``inf > inf`` is False) and die on
    ``None.count`` once the heap drained."""
    sim = Simulator(use_wheel=False)
    assert sim.wheel is None
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.run()
    assert fired == [1]


def test_run_fires_wheel_resident_event_with_empty_heap():
    """The run loop must refill from the wheel even when the heap is
    completely empty (nothing to pop, but the run is not done)."""
    sim = Simulator(use_wheel=True)
    fired = []
    sim.post(MID_FUTURE, fired.append, 1)
    assert sim._heap == []
    sim.run()
    assert fired == [1]


def test_run_until_respects_wheel_deadline():
    sim = Simulator(use_wheel=True)
    fired = []
    sim.schedule(MID_FUTURE, fired.append, 1)
    sim.run(until=MID_FUTURE / 2)
    assert fired == []
    assert sim.now == MID_FUTURE / 2
    sim.run(until=2 * MID_FUTURE)
    assert fired == [1]


def test_step_through_wheel_resident_events():
    sim = Simulator(use_wheel=True)
    fired = []
    sim.post(MID_FUTURE, fired.append, 1)
    sim.post(2 * MID_FUTURE, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_idle_stretch_then_reschedule():
    """After the wheel drains and simulated time runs far past its origin,
    a fresh insert must catch the origin up (stale base_tick would put a
    near event in a far bucket and fire it late)."""
    sim = Simulator(use_wheel=True)
    fired = []
    sim.post(MID_FUTURE, fired.append, "a")
    sim.run()
    sim.run(until=sim.now + 5.0)  # idle: clock advances, wheel empty
    sim.post(MID_FUTURE, fired.append, "b")
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == pytest.approx(MID_FUTURE + 5.0 + MID_FUTURE)


# ----------------------------------------------------------------------
# tick math
# ----------------------------------------------------------------------

def test_tick_of_lower_bound_property():
    rng = random.Random(7)
    samples = [rng.uniform(0.0, 2000.0) for _ in range(2000)]
    samples += [n * TICK_S for n in range(0, 3000, 7)]  # exact boundaries
    for t in samples:
        k = tick_of(t)
        assert k * TICK_S <= t < (k + 1) * TICK_S, t


# ----------------------------------------------------------------------
# randomized differential: wheel engine vs heap-only engine
# ----------------------------------------------------------------------

def _trace(use_wheel: bool, seed: int):
    """Drive one engine through a seeded schedule/cancel script and return
    the full firing trace.

    The script mixes every placement regime (near/heap, wheel levels 0-2,
    beyond-horizon overflow), cancels random live handles, and schedules
    from inside callbacks.  Both engines consume the rng in fire order, so
    any ordering divergence derails the comparison immediately — which is
    the point.
    """
    rng = random.Random(seed)
    sim = Simulator(use_wheel=use_wheel)
    fired = []
    live = []
    next_id = [0]

    def cb(i):
        fired.append((sim.now, i))

    def driver(round_no):
        for _ in range(8):
            r = rng.random()
            if r < 0.6 or not live:
                delay = rng.choice([
                    rng.uniform(0.0, 4 * TICK_S),
                    rng.uniform(0.0, SLOTS * TICK_S),
                    rng.uniform(0.0, 0.5),
                    rng.uniform(0.0, (_HORIZON_TICKS + 500) * TICK_S),
                ])
                i = next_id[0]
                next_id[0] = i + 1
                live.append(sim.schedule(delay, cb, i))
            else:
                # Cancel a random handle; it may already have fired
                # (cancel is then a no-op) — identically in both engines.
                live.pop(rng.randrange(len(live))).cancel()
        if round_no > 0:
            sim.schedule(rng.uniform(0.0, 2e-3), driver, round_no - 1)

    driver(120)
    sim.run()
    return fired, sim.events_fired


@pytest.mark.parametrize("seed", [1, 20260808, 424242])
def test_randomized_differential_wheel_vs_heap(seed):
    wheel_trace, wheel_fired = _trace(True, seed)
    heap_trace, heap_fired = _trace(False, seed)
    assert wheel_fired == heap_fired
    # Bit-identical: same events, same absolute times, same order.
    assert wheel_trace == heap_trace
    assert len(wheel_trace) > 250  # the script actually exercised things
