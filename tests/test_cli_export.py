"""CLI, CSV export, and validation-band tests."""

import csv
import io
import os

import pytest

from repro.analysis.export import result_to_csv, results_to_csv_files
from repro.analysis.validation import CheckResult, validate
from repro.cli import build_parser, main
from repro.experiments.base import ExperimentResult


def fake_result(eid="figure99", rows=None, columns=None):
    return ExperimentResult(
        experiment_id=eid,
        title="T",
        paper_reference="ref",
        columns=columns or ["a", "b"],
        rows=rows if rows is not None else [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}],
    )


# ---------------------------------------------------------------- export
def test_csv_roundtrip():
    text = result_to_csv(fake_result())
    rows = list(csv.DictReader(io.StringIO(text)))
    assert rows == [{"a": "1", "b": "2.5"}, {"a": "3", "b": "4.5"}]


def test_csv_missing_cells_blank():
    text = result_to_csv(fake_result(rows=[{"a": 1}]))
    rows = list(csv.DictReader(io.StringIO(text)))
    assert rows[0]["b"] == ""


def test_csv_files_written(tmp_path):
    paths = results_to_csv_files([fake_result("e1"), fake_result("e2")], str(tmp_path))
    assert sorted(os.path.basename(p) for p in paths) == ["e1.csv", "e2.csv"]
    assert all(os.path.exists(p) for p in paths)


# ---------------------------------------------------------------- validation
def test_validate_unknown_experiment_returns_empty():
    assert validate(fake_result("not-registered")) == []


def test_validate_table1_bands():
    result = ExperimentResult(
        experiment_id="table1", title="t", paper_reference="r",
        columns=["system", "delta %"],
        rows=[{"system": "Linux UP", "delta %": 0.2},
              {"system": "Xen", "delta %": -3.0}],
    )
    checks = validate(result)
    assert [c.passed for c in checks] == [True, False]
    assert "FAIL" in str(checks[1])


def test_validate_figure12_band():
    result = ExperimentResult(
        experiment_id="figure12", title="t", paper_reference="r",
        columns=["connections", "gain %"],
        rows=[{"connections": 400, "gain %": 55.0}],
    )
    checks = validate(result)
    assert checks[0].passed


# ---------------------------------------------------------------- CLI
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure7" in out and "extension_hw_lro" in out


def test_cli_run_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "not-an-experiment"])


def test_cli_run_quick_with_csv(tmp_path, capsys):
    csv_path = str(tmp_path / "out.csv")
    assert main(["run", "ablation_limit1", "--quick", "--csv", csv_path]) == 0
    out = capsys.readouterr().out
    assert "ablation_limit1" in out
    with open(csv_path) as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 2


def test_cli_report_quick(tmp_path, capsys, monkeypatch):
    # Patch the registry to a single cheap experiment to keep this fast.
    import repro.experiments.runner as runner

    monkeypatch.setattr(runner, "REGISTRY", {"ablation_limit1": runner.REGISTRY["ablation_limit1"]})
    out_path = str(tmp_path / "EXP.md")
    assert main(["report", out_path, "--quick"]) == 0
    text = open(out_path).read()
    assert "ablation_limit1" in text


# ---------------------------------------------------------------- obs flags
def test_breakdown_to_json_transposes_categories():
    from repro.analysis.export import breakdown_to_json

    result = fake_result(
        columns=["category", "baseline", "optimized"],
        rows=[{"category": "driver", "baseline": 100.0, "optimized": 40.0},
              {"category": "tcp", "baseline": 50.0, "optimized": 45.0}],
    )
    doc = breakdown_to_json(result)
    assert doc["breakdown"] == {
        "baseline": {"driver": 100.0, "tcp": 50.0},
        "optimized": {"driver": 40.0, "tcp": 45.0},
    }


def test_breakdown_to_json_passthrough_for_plain_rows():
    from repro.analysis.export import breakdown_to_json

    doc = breakdown_to_json(fake_result())
    assert "breakdown" not in doc
    assert doc["columns"] == ["a", "b"] and len(doc["rows"]) == 2


def test_cli_run_with_observability_flags(tmp_path, capsys):
    """End-to-end: every obs flag produces a file that validates."""
    import json as _json

    from repro.obs.__main__ import check_document

    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    profile = tmp_path / "profile.json"
    assert main([
        "run", "ablation_limit1", "--quick",
        "--trace", str(trace),
        "--metrics-out", str(metrics),
        "--sample-interval", "0.005",
        "--profile-out", str(profile),
    ]) == 0
    out = capsys.readouterr().out
    assert "time-series dashboard" in out
    for path, expected_kind in (
        (trace, "chrome-trace"),
        (metrics, "observation-bundle"),
        (profile, "profile"),
    ):
        with open(path) as fh:
            doc = _json.load(fh)
        kind, problems = check_document(doc)
        assert kind == expected_kind and problems == [], (path, kind, problems)
    # The CLI resets the process-global config after exporting.
    from repro import obs

    assert not obs.config().enabled
    assert obs.drain_completed() == []
