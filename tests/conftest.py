"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import OptimizationConfig
from repro.host.configs import linux_up_config
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def fast_config(**overrides):
    """A Linux-UP config shrunk for fast integration tests (2 NICs)."""
    cfg = linux_up_config()
    return dataclasses.replace(cfg, n_nics=overrides.pop("n_nics", 2), **overrides)


@pytest.fixture
def baseline_opt() -> OptimizationConfig:
    return OptimizationConfig.baseline()


@pytest.fixture
def optimized_opt() -> OptimizationConfig:
    return OptimizationConfig.optimized()
