"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.core.config import OptimizationConfig
from repro.host.configs import linux_up_config
from repro.sim.engine import Simulator

#: ``REPRO_SANITIZE=1 pytest`` runs the whole suite with the runtime
#: invariant checker installed (see repro.analysis.sanitizer); CI runs the
#: tier-1 suite once in this mode.
_SANITIZE = os.environ.get("REPRO_SANITIZE") == "1"

#: ``REPRO_RACECHECK=1 pytest`` likewise runs the suite with the cross-CPU
#: ownership race detector installed (see repro.analysis.racecheck).
_RACECHECK = os.environ.get("REPRO_RACECHECK") == "1"


@pytest.fixture(autouse=_SANITIZE)
def _sanitized_run():
    if not _SANITIZE:  # autouse is False then, but keep the guard explicit
        yield
        return
    from repro.analysis.sanitizer import install, uninstall

    handle = install()
    try:
        yield
    finally:
        uninstall(handle)


@pytest.fixture(autouse=_RACECHECK)
def _racechecked_run():
    if not _RACECHECK:
        yield
        return
    from repro.analysis.racecheck import install, uninstall

    handle = install()
    try:
        yield
    finally:
        uninstall(handle)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def fast_config(**overrides):
    """A Linux-UP config shrunk for fast integration tests (2 NICs)."""
    cfg = linux_up_config()
    return dataclasses.replace(cfg, n_nics=overrides.pop("n_nics", 2), **overrides)


@pytest.fixture
def baseline_opt() -> OptimizationConfig:
    return OptimizationConfig.baseline()


@pytest.fixture
def optimized_opt() -> OptimizationConfig:
    return OptimizationConfig.optimized()
