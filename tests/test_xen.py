"""Xen pipeline tests: category accounting, domain crossing, integrity."""

import dataclasses

import pytest

from repro.core.config import OptimizationConfig
from repro.cpu.categories import Category
from repro.host.client import ClientHost
from repro.host.configs import xen_config
from repro.net.addresses import ip_from_str
from repro.sim.engine import Simulator
from repro.tcp.connection import TcpConfig
from repro.tcp.source import InfiniteSource
from repro.xen.machine import XenReceiverMachine

SERVER = ip_from_str("10.0.0.1")


def fast_xen_config():
    return dataclasses.replace(xen_config(), n_nics=1)


def run_xen_transfer(opt, nbytes=150_000, until=10.0):
    sim = Simulator()
    machine = XenReceiverMachine(sim, fast_xen_config(), opt, ip=SERVER)
    machine.listen(5001)
    client = ClientHost(sim, ip_from_str("10.0.1.1"))
    machine.add_client(client)
    sock = client.connect(SERVER, 5001, config=TcpConfig(materialize_payload=True))
    sock.conn.attach_source(InfiniteSource(materialize=True, seed=4, limit_bytes=nbytes))
    sim.run(until=until)
    server_sock = next(iter(machine.kernel.sockets.values()))
    return machine, server_sock


def test_native_config_rejected():
    from repro.host.configs import linux_up_config

    with pytest.raises(ValueError):
        XenReceiverMachine(Simulator(), linux_up_config(), OptimizationConfig.baseline())


def test_xen_transfer_integrity_baseline():
    machine, sock = run_xen_transfer(OptimizationConfig.baseline())
    assert sock.bytes_received == 150_000
    machine.dd_pool.assert_balanced()
    machine.guest_pool.assert_balanced()


def test_xen_transfer_integrity_optimized():
    machine, sock = run_xen_transfer(OptimizationConfig.optimized())
    assert sock.bytes_received == 150_000
    assert machine.profiler.aggregation_degree > 2
    machine.dd_pool.assert_balanced()
    machine.guest_pool.assert_balanced()


def test_xen_categories_populated():
    machine, _ = run_xen_transfer(OptimizationConfig.baseline())
    cycles = machine.profiler.cycles
    for cat in (Category.NETBACK, Category.NETFRONT, Category.XEN,
                Category.TCP_RX, Category.TCP_TX, Category.NON_PROTO,
                Category.PER_BYTE, Category.DRIVER, Category.BUFFER):
        assert cycles.get(cat, 0) > 0, cat
    # Guest work was relabelled: no bare rx/tx categories on a Xen machine.
    assert Category.RX not in cycles
    assert Category.TX not in cycles


def test_two_copies_cost_more_per_byte_than_native():
    """Xen pays the grant copy AND the guest copy-to-user (§2.4)."""
    machine, _ = run_xen_transfer(OptimizationConfig.baseline())
    per_byte = machine.profiler.cycles[Category.PER_BYTE]
    n = machine.profiler.network_packets
    native_single_copy = machine.config.costs.copy_cycles(1448)
    assert per_byte / n > 2 * native_single_copy  # two copies, one inflated


def test_guest_scale_inflates_guest_kernel_work():
    machine, _ = run_xen_transfer(OptimizationConfig.baseline())
    n = machine.profiler.network_packets
    tcp_rx = machine.profiler.cycles[Category.TCP_RX] / n
    native = machine.config.costs.ip_rx + machine.config.costs.tcp_rx
    assert tcp_rx == pytest.approx(native * 1.5, rel=0.15)


def test_aggregation_happens_in_driver_domain():
    """The aggregator must sit before the bridge: bridge (non-proto) cost
    scales with HOST packets, not network packets (Figure 10)."""
    base, _ = run_xen_transfer(OptimizationConfig.baseline())
    opt, _ = run_xen_transfer(OptimizationConfig.optimized())
    n_base = base.profiler.network_packets
    n_opt = opt.profiler.network_packets
    bridge_base = base.profiler.cycles[Category.NON_PROTO] / n_base
    bridge_opt = opt.profiler.cycles[Category.NON_PROTO] / n_opt
    assert bridge_opt < bridge_base / 2


def test_netfront_netback_reduced_less_than_bridge():
    """§5.1: netback/netfront pay per-fragment costs, so they shrink less."""
    base, _ = run_xen_transfer(OptimizationConfig.baseline())
    opt, _ = run_xen_transfer(OptimizationConfig.optimized())

    def per_pkt(m, cat):
        return m.profiler.cycles[cat] / m.profiler.network_packets

    bridge_reduction = per_pkt(base, Category.NON_PROTO) / per_pkt(opt, Category.NON_PROTO)
    netback_reduction = per_pkt(base, Category.NETBACK) / per_pkt(opt, Category.NETBACK)
    netfront_reduction = per_pkt(base, Category.NETFRONT) / per_pkt(opt, Category.NETFRONT)
    assert bridge_reduction > netback_reduction
    assert bridge_reduction > netfront_reduction


def test_template_ack_crosses_pipeline_once():
    machine, _ = run_xen_transfer(OptimizationConfig.optimized())
    tx_path = machine.tx_paths[0]
    driver = machine.drivers[0]
    assert driver.stats.tx_templates > 0
    assert driver.stats.tx_expanded_acks > driver.stats.tx_templates
    # Each template crossed netfront/netback once (plus handshake/ACK singles).
    assert tx_path.templates == driver.stats.tx_templates


def test_xen_skb_reparenting_balances_both_pools():
    machine, _ = run_xen_transfer(OptimizationConfig.baseline())
    assert machine.dd_pool.stats.allocs > 0
    assert machine.guest_pool.stats.allocs > 0
    machine.dd_pool.assert_balanced()
    machine.guest_pool.assert_balanced()
