"""Workload harness tests: measurement accounting and result sanity."""

import dataclasses

import pytest

from repro.core.config import OptimizationConfig
from repro.host.configs import linux_up_config
from repro.workloads.request_response import run_rr_experiment
from repro.workloads.results import LatencyResult, ThroughputResult
from repro.workloads.stream import build_stream_rig, run_stream_experiment

from tests.conftest import fast_config


def small_run(opt, **kw):
    return run_stream_experiment(fast_config(), opt, duration=0.04, warmup=0.04, **kw)


def test_throughput_result_fields_consistent():
    r = small_run(OptimizationConfig.baseline())
    assert r.system == "Linux UP"
    assert not r.optimized
    assert r.bytes_received > 0
    assert r.throughput_mbps == pytest.approx(r.bytes_received * 8 / r.duration_s / 1e6)
    assert 0 < r.cpu_utilization <= 1
    assert r.network_packets > 0
    assert r.cycles_per_packet == pytest.approx(
        sum(r.breakdown.values()), rel=1e-6
    )


def test_cpu_scaled_throughput_definition():
    r = small_run(OptimizationConfig.optimized())
    assert r.cpu_scaled_mbps == pytest.approx(r.throughput_mbps / r.cpu_utilization)


def test_baseline_has_aggregation_degree_one():
    r = small_run(OptimizationConfig.baseline())
    assert r.aggregation_degree == pytest.approx(1.0, abs=0.01)


def test_optimized_reports_aggregation_degree():
    r = small_run(OptimizationConfig.optimized())
    assert r.aggregation_degree > 3


def test_share_and_group_helpers():
    r = small_run(OptimizationConfig.baseline())
    total = sum(r.share(c) for c in r.breakdown)
    assert total == pytest.approx(1.0)
    assert r.group_cycles(["rx", "tx"]) == pytest.approx(r.breakdown["rx"] + r.breakdown["tx"])


def test_multi_connection_rig_spreads_over_nics():
    sim, machine, clients, senders = build_stream_rig(
        fast_config(), OptimizationConfig.baseline(), n_connections=6
    )
    assert len(clients) == 2
    assert len(senders) == 6
    per_client = [len(c.connections) for c in clients]
    assert per_client == [3, 3]


def test_more_connections_than_nics_still_measures():
    r = small_run(OptimizationConfig.optimized(), n_connections=8)
    assert r.throughput_mbps > 500


def test_rr_latency_result_sane():
    r = run_rr_experiment(fast_config(), OptimizationConfig.baseline(), duration=0.1, warmup=0.05)
    assert isinstance(r, LatencyResult)
    assert r.transactions > 100
    assert 0 < r.mean_rtt_s < 1e-3
    assert r.transactions_per_sec == pytest.approx(r.transactions / r.duration_s)


def test_rr_request_response_sizes_respected():
    r = run_rr_experiment(
        fast_config(), OptimizationConfig.baseline(),
        duration=0.1, warmup=0.05, request_size=128, response_size=1024,
    )
    assert r.transactions > 50


def test_zero_duration_latency_rate():
    r = LatencyResult(system="x", optimized=False, transactions=0, duration_s=0, mean_rtt_s=0)
    assert r.transactions_per_sec == 0.0


def test_throughput_deterministic_replay():
    a = small_run(OptimizationConfig.optimized())
    b = small_run(OptimizationConfig.optimized())
    assert a.throughput_mbps == pytest.approx(b.throughput_mbps, rel=1e-12)
    assert a.cycles_per_packet == pytest.approx(b.cycles_per_packet, rel=1e-12)
