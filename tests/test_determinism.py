"""Determinism regression: the same experiment run twice in one process
must produce bit-identical rows and an identical ``events_fired`` count.

This is the contract every fast-path change must preserve (engine heap
layout, template packets, interned profiler categories): optimizations may
change *how fast* the simulator runs, never *what* it computes.  Running
twice in one process also catches leaked module-level state (template
caches, category interning, RNG reuse) that a single cold run would miss.
"""

from __future__ import annotations

import json

from repro.core.config import OptimizationConfig
from repro.experiments.runner import run_experiment
from repro.host.configs import linux_up_config
from repro.workloads.stream import build_stream_rig


def _rows_json(result) -> str:
    return json.dumps(result.rows, sort_keys=True, default=str)


def test_figure03_quick_is_deterministic():
    first = run_experiment("figure3", quick=True)
    second = run_experiment("figure3", quick=True)
    assert _rows_json(first) == _rows_json(second)


def test_stream_rig_events_fired_is_deterministic():
    """Two cold rigs must fire the same events and deliver the same bytes."""
    outcomes = []
    for _ in range(2):
        sim, machine, _clients, _senders = build_stream_rig(
            linux_up_config(), OptimizationConfig.optimized()
        )
        sim.run(until=0.05)
        bytes_rx = sum(
            sock.bytes_received for sock in machine.kernel.sockets.values()
        )
        outcomes.append((sim.events_fired, bytes_rx))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0] > 0
    assert outcomes[0][1] > 0
