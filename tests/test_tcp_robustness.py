"""TCP machine robustness: timers, Karn, backoff, SWS, determinism."""

import pytest

from repro.net.tcp_header import TcpFlags
from repro.sim.engine import Simulator
from repro.tcp.connection import TcpConfig
from repro.tcp.source import ByteSource, InfiniteSource

import sys

sys.path.insert(0, "tests")
from helpers import make_pair  # noqa: E402


def test_rto_backoff_doubles(sim):
    """Consecutive unanswered retransmissions back the timer off exponentially."""
    conn_a, conn_b, sock_a, sock_b, ta, _ = make_pair(sim)
    ta.filter_fn = lambda pkt: pkt.payload_len == 0  # drop all data forever
    rtx_times = []
    original = conn_a._retransmit_front

    def spy():
        rtx_times.append(sim.now)
        original()

    conn_a._retransmit_front = spy
    sock_a.send(b"x" * 100)
    # No RTT samples yet, so the first RTO is the RFC 6298 initial 1 s;
    # backoff then doubles: fires at ~1, 3, 7, 15 s.
    sim.run(until=sim.now + 16.0)
    assert len(rtx_times) >= 3
    gaps = [b - a for a, b in zip(rtx_times, rtx_times[1:])]
    for earlier, later in zip(gaps, gaps[1:]):
        assert later > 1.5 * earlier  # exponential backoff


def test_backoff_resets_after_progress(sim):
    conn_a, conn_b, sock_a, sock_b, ta, _ = make_pair(sim)
    state = {"drop": True}
    ta.filter_fn = lambda pkt: not (state["drop"] and pkt.payload_len > 0)
    sock_a.send(b"y" * 100)
    sim.run(until=sim.now + 1.5)  # a couple of RTOs
    assert conn_a._rto_backoff >= 1
    state["drop"] = False
    sim.run(until=sim.now + 5.0)
    assert sock_b.bytes_received == 100
    assert conn_a._rto_backoff == 0


def test_karn_no_rtt_sample_from_retransmission_without_timestamps(sim):
    """With timestamps disabled, an ACK for a retransmitted segment must not
    produce an RTT sample (Karn's algorithm)."""
    cfg = TcpConfig(materialize_payload=True, use_timestamps=False)
    conn_a, conn_b, sock_a, sock_b, ta, _ = make_pair(sim, config_a=cfg, config_b=cfg)
    state = {"dropped": False}

    def drop_first(pkt):
        if pkt.payload_len > 0 and not state["dropped"]:
            state["dropped"] = True
            return False
        return True

    ta.filter_fn = drop_first
    samples_before = conn_a.rtt.samples
    sock_a.send(b"z" * 100)
    sim.run(until=sim.now + 2.0)
    assert sock_b.bytes_received == 100
    # The only data segment was retransmitted: no sample may have been taken
    # from it.  (Timer-based sampling only; timestamps are off.)
    assert conn_a.rtt.samples == samples_before


def test_rtt_sampled_without_timestamps_on_clean_path(sim):
    cfg = TcpConfig(materialize_payload=True, use_timestamps=False)
    conn_a, conn_b, sock_a, sock_b, *_ = make_pair(sim, config_a=cfg, config_b=cfg)
    sock_a.send(InfiniteSource.pattern(0, 10 * 1448))
    sim.run(until=sim.now + 0.5)
    assert conn_a.rtt.samples > 0
    assert conn_a.rtt.last_sample < 0.01


def test_sws_avoidance_no_runt_segments(sim):
    """A window-crimped sender waits instead of emitting sub-MSS runts."""
    small = TcpConfig(materialize_payload=True, rcv_buf=10 * 1448, window_scale=1)
    conn_a, conn_b, sock_a, sock_b, ta, _ = make_pair(sim, config_b=small)
    conn_a.attach_source(InfiniteSource(materialize=True, seed=2, limit_bytes=200 * 1448))
    conn_a.app_wrote()
    sim.run(until=sim.now + 2.0)
    data = [p for p in ta.sent if p.payload_len > 0]
    runts = [p for p in data if p.payload_len < 1448]
    # Only the final segment of the stream may be sub-MSS.
    assert len(runts) <= 1
    assert sock_b.bytes_received == 200 * 1448


def test_deterministic_replay_of_lossy_transfer():
    """Identical seeds => bit-identical protocol evolution."""
    outcomes = []
    for _ in range(2):
        sim = Simulator()
        conn_a, conn_b, sock_a, sock_b, ta, _ = make_pair(sim)
        counter = {"n": 0}

        def drop_every_50th(pkt):
            if pkt.payload_len > 0:
                counter["n"] += 1
                if counter["n"] % 50 == 0:
                    return False
            return True

        ta.filter_fn = drop_every_50th
        conn_a.attach_source(InfiniteSource(materialize=True, seed=1, limit_bytes=100 * 1448))
        conn_a.app_wrote()
        sim.run(until=3.0)
        outcomes.append((
            sock_b.bytes_received,
            conn_a.stats.retransmits,
            conn_a.stats.fast_retransmits,
            conn_a.reno.cwnd,
            sim.events_fired,
        ))
    assert outcomes[0] == outcomes[1]


def test_fin_retransmitted_if_lost(sim):
    conn_a, conn_b, sock_a, sock_b, ta, _ = make_pair(sim)
    state = {"dropped": False}

    def drop_first_fin(pkt):
        if TcpFlags.FIN in pkt.tcp.flags and not state["dropped"]:
            state["dropped"] = True
            return False
        return True

    ta.filter_fn = drop_first_fin
    sock_a.close()
    sim.run(until=sim.now + 5.0)
    assert state["dropped"]
    assert sock_b.remote_closed
    fins = [p for p in ta.sent if TcpFlags.FIN in p.tcp.flags]
    assert len(fins) >= 2


def test_simultaneous_close(sim):
    conn_a, conn_b, sock_a, sock_b, *_ = make_pair(sim)
    sock_a.close()
    sock_b.close()
    sim.run(until=sim.now + 5.0)
    from repro.tcp.state import TcpState

    assert conn_a.state is TcpState.CLOSED
    assert conn_b.state is TcpState.CLOSED


def test_half_close_peer_can_still_send(sim):
    conn_a, conn_b, sock_a, sock_b, *_ = make_pair(sim)
    sock_a.close()  # A finished sending...
    sim.run(until=sim.now + 0.1)
    sock_b.send(b"late data from B")  # ...but B may still transmit
    sim.run(until=sim.now + 0.5)
    assert sock_a.payload_bytes() == b"late data from B"
